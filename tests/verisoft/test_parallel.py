"""Tests for parallel stateless exploration (repro.verisoft.parallel).

The partition scheme must be *exact*: enumerating prefixes, completing
each subtree independently and merging the reports has to reproduce the
sequential DFS report counter for counter and event for event.  The
determinism tests pin that guarantee on the paper's Figure 2/3 programs.
"""

import pickle

import pytest

from tests.helpers import dfs_search
from repro import SearchOptions, System, close_program, run_search
from repro.verisoft import (
    ChoicePrefix,
    enumerate_prefixes,
    merge_reports,
    parallel_search,
)
from repro.verisoft.parallel import explore_subtree

P_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 4) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""

Q_SRC = """
proc q(x) {
    var cnt = 0;
    while (cnt < 4) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""


def toss_system(bound=3):
    system = System(
        f"proc main() {{ var t; t = VS_toss({bound}); send(out, t); }}"
    )
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def closed_figure_system(source, proc):
    closed = close_program(source, env_params={proc: ["x"]})
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return system


def racing_system():
    """Two producers racing into one consumer: scheduling nondeterminism."""
    src = """
    proc producer(id) { send(c, id); }
    proc consumer() { var a; var b; a = recv(c); b = recv(c); send(out, a * 10 + b); }
    """
    system = System(src)
    system.add_env_sink("out")
    system.add_channel("c", capacity=1)
    system.add_process("p1", "producer", [1])
    system.add_process("p2", "producer", [2])
    system.add_process("con", "consumer", [])
    return system


def deadlock_system():
    src = """
    proc grab(first, second) {
        sem_p(first);
        sem_p(second);
        sem_v(second);
        sem_v(first);
    }
    """
    system = System(src)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


class TestPrefixEnumeration:
    def test_prefixes_are_deterministic(self):
        first, _ = enumerate_prefixes(toss_system(9), 1, max_depth=20)
        second, _ = enumerate_prefixes(toss_system(9), 1, max_depth=20)
        assert first == second
        assert all(isinstance(p, ChoicePrefix) for p in first)

    def test_toss_fanout_reflected_in_prefix_count(self):
        # VS_toss(9) at the root: cutting below the toss must yield one
        # prefix per chosen value (10 of them).
        prefixes, _ = enumerate_prefixes(toss_system(9), 1, max_depth=20)
        assert len(prefixes) == 10

    def test_prefix_pins_every_decision(self):
        prefixes, _ = enumerate_prefixes(toss_system(3), 1, max_depth=20)
        indices = [tuple(pt.index for pt in p.points) for p in prefixes]
        # All distinct, in DFS order.
        assert len(set(indices)) == len(indices)
        assert indices == sorted(indices)

    def test_describe_is_readable(self):
        prefixes, _ = enumerate_prefixes(toss_system(3), 1, max_depth=20)
        text = prefixes[0].describe()
        assert "toss=0" in text
        assert "schedule='p'" in text

    def test_coordinator_counts_only_above_frontier(self):
        sequential = dfs_search(racing_system(), max_depth=30)
        _, coordinator = enumerate_prefixes(racing_system(), 2, max_depth=30)
        assert coordinator.transitions_executed < sequential.transitions_executed

    def test_deep_frontier_yields_no_prefixes(self):
        # Frontier beyond every path: plain sequential search, no cuts.
        prefixes, coordinator = enumerate_prefixes(
            toss_system(3), 50, max_depth=20
        )
        assert prefixes == []
        assert coordinator.summary() == dfs_search(toss_system(3), max_depth=20).summary()


class TestManualMerge:
    """Drive the partition pipeline by hand (no pool) and demand parity."""

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_merge_matches_sequential(self, depth):
        sequential = dfs_search(toss_system(9), max_depth=20, max_events=1000)
        prefixes, coordinator = enumerate_prefixes(
            toss_system(9), depth, max_depth=20, max_events=1000
        )
        workers = [
            explore_subtree(toss_system(9), p, max_depth=20, max_events=1000)[0]
            for p in prefixes
        ]
        merged = merge_reports(
            coordinator, workers, num_prefixes=len(prefixes), max_events=1000
        )
        assert merged.summary() == sequential.summary()

    def test_merge_deduplicates_shared_events(self):
        # Events found above the frontier appear only in the coordinator;
        # feeding the coordinator itself in twice must not double-count.
        sequential = dfs_search(deadlock_system(), max_depth=20, max_events=1000)
        prefixes, coordinator = enumerate_prefixes(
            deadlock_system(), 2, max_depth=20, max_events=1000
        )
        workers = [
            explore_subtree(deadlock_system(), p, max_depth=20, max_events=1000)[0]
            for p in prefixes
        ]
        merged = merge_reports(
            coordinator, workers, num_prefixes=len(prefixes), max_events=1000
        )
        assert len(merged.deadlocks) == len(sequential.deadlocks)
        keys = [d.trace.choices for d in merged.deadlocks]
        assert len(set(keys)) == len(keys)

    def test_merge_respects_event_cap(self):
        prefixes, coordinator = enumerate_prefixes(
            deadlock_system(), 2, max_depth=20, max_events=1
        )
        workers = [
            explore_subtree(deadlock_system(), p, max_depth=20, max_events=1)[0]
            for p in prefixes
        ]
        merged = merge_reports(
            coordinator, workers, num_prefixes=len(prefixes), max_events=1
        )
        assert len(merged.deadlocks) == 1

    def test_merged_stats_aggregate_workers(self):
        prefixes, coordinator = enumerate_prefixes(toss_system(9), 2, max_depth=20)
        workers = [
            explore_subtree(toss_system(9), p, max_depth=20)[0] for p in prefixes
        ]
        merged = merge_reports(
            coordinator, workers, num_prefixes=len(prefixes), max_events=25
        )
        assert merged.stats is not None
        assert merged.stats.states_visited == merged.states_visited
        assert merged.stats.replays == sum(
            r.stats.replays for r in [coordinator, *workers]
        )


class TestParallelSearch:
    @pytest.mark.parametrize(
        "make_system",
        [toss_system, racing_system, deadlock_system],
        ids=["toss", "racing", "deadlock"],
    )
    def test_matches_sequential_dfs(self, make_system):
        options = SearchOptions(max_depth=30, max_events=1000)
        sequential = run_search(make_system(), options)
        for jobs in (1, 2):
            parallel = run_search(
                make_system(),
                options,
                strategy="parallel",
                jobs=jobs,
            )
            assert parallel.summary() == sequential.summary(), f"jobs={jobs}"

    @pytest.mark.parametrize(
        "source,proc", [(P_SRC, "p"), (Q_SRC, "q")], ids=["figure2", "figure3"]
    )
    def test_jobs_1_and_4_identical_on_figures(self, source, proc):
        """The satellite determinism requirement: closed Figure 2/3
        programs searched with --jobs 1 and --jobs 4 merge identically."""
        options = SearchOptions(
            strategy="parallel", max_depth=40, max_events=1000, count_states=True
        )
        one = run_search(closed_figure_system(source, proc), options, jobs=1)
        four = run_search(closed_figure_system(source, proc), options, jobs=4)
        assert one.summary() == four.summary()
        assert one.paths_explored > 1  # the closing introduced real branching
        # And both equal the plain sequential DFS.
        sequential = run_search(
            closed_figure_system(source, proc),
            SearchOptions(max_depth=40, max_events=1000, count_states=True),
        )
        assert one.summary() == sequential.summary()

    def test_count_states_unions_fingerprints(self):
        options = SearchOptions(max_depth=30, count_states=True, max_events=1000)
        sequential = run_search(racing_system(), options)
        parallel = run_search(racing_system(), options, strategy="parallel", jobs=2)
        assert parallel.states_visited == sequential.states_visited

    def test_explicit_prefix_depth(self):
        report = parallel_search(
            toss_system(9),
            SearchOptions(strategy="parallel", jobs=2, prefix_depth=1, max_depth=20),
        )
        assert report.stats.prefixes == 10
        assert report.summary() == dfs_search(toss_system(9), max_depth=20).summary()

    def test_stop_on_first_reports_an_event(self):
        report = parallel_search(
            deadlock_system(),
            SearchOptions(strategy="parallel", jobs=2, stop_on_first=True, max_depth=20),
        )
        assert report.deadlocks
        assert not report.ok

    def test_stats_record_jobs_and_prefixes(self):
        report = parallel_search(
            toss_system(9), SearchOptions(strategy="parallel", jobs=2, max_depth=20)
        )
        assert report.stats.strategy == "parallel"
        assert report.stats.jobs == 2
        assert report.stats.prefixes >= 1
        assert report.stats.wall_time > 0

    def test_system_factory_escape_hatch(self):
        report = parallel_search(
            toss_system(9),
            SearchOptions(strategy="parallel", jobs=2, max_depth=20),
            system_factory=lambda: toss_system(9),
        )
        assert report.summary() == dfs_search(toss_system(9), max_depth=20).summary()


class TestPicklability:
    def test_system_roundtrips_through_pickle(self):
        system = toss_system(3)
        clone = pickle.loads(pickle.dumps(system))
        assert dfs_search(clone).summary() == dfs_search(toss_system(3)).summary()

    def test_run_refuses_to_pickle(self):
        run = toss_system(3).start()
        with pytest.raises(TypeError, match="cannot be pickled"):
            pickle.dumps(run)
