"""Cross-validation of the explorer against an independent reference.

The production explorer is stateless, replay-based and partial-order
reduced — lots of machinery to get wrong.  This suite re-implements
exhaustive exploration in the most naive way possible (plain recursion
over choice prefixes, re-executing from scratch at every step, no
sharing, no reduction) and checks that both agree on the *semantic*
facts: the set of reachable global states (by fingerprint), the set of
deadlock states, and whether a violation exists.
"""

import pytest

from tests.helpers import dfs_search
from repro import System
from repro.runtime.system import Run


def _reference_explore(build_system, max_depth):
    """Naive exhaustive exploration by prefix re-execution."""
    states: set = set()
    deadlock_states: set = set()
    violation = False

    def replay(prefix):
        run = build_system().start()
        run.start_processes()
        for kind, which in prefix:
            if kind == "toss":
                process = run.toss_pending()
                run.answer_toss(process, which)
            else:
                process = next(p for p in run.processes if p.name == which)
                outcome = run.execute_visible(process)
                if outcome is not None and outcome.violated:
                    nonlocal violation
                    violation = True
        return run

    def expand(prefix, depth):
        run = replay(prefix)
        pending = run.toss_pending()
        if pending is not None:
            for value in range(pending.toss_request.bound + 1):
                expand(prefix + [("toss", value)], depth)
            return
        fingerprint = run.state_fingerprint()
        states.add(fingerprint)
        if run.is_deadlock():
            deadlock_states.add(fingerprint)
            return
        if depth >= max_depth:
            return
        for process in run.enabled_processes():
            expand(prefix + [("schedule", process.name)], depth + 1)

    expand([], 0)
    return states, deadlock_states, violation


def _production_explore(build_system, max_depth, por):
    deadlock_states: set = set()

    def on_leaf(run: Run, _trace):
        if run.is_deadlock():
            deadlock_states.add(run.state_fingerprint())

    report = dfs_search(
        build_system(),
        max_depth=max_depth,
        por=por,
        count_states=True,
        on_leaf=on_leaf,
    )
    return report, deadlock_states


def two_incrementers():
    source = """
    proc incr(n) {
        var i = 0;
        while (i < n) {
            var v;
            v = read(counter);
            write(counter, v + 1);
            i = i + 1;
        }
    }
    """
    system = System(source)
    system.add_shared("counter", 0)
    system.add_process("a", "incr", [1])
    system.add_process("b", "incr", [1])
    return system


def toss_and_sync():
    source = """
    proc chooser() {
        var t;
        t = VS_toss(1);
        if (t == 0) { send(ch, 'zero'); } else { send(ch, 'one'); }
    }
    proc taker() {
        var m;
        m = recv(ch);
        VS_assert(m != 'one');
    }
    """
    system = System(source)
    system.add_channel("ch", capacity=1)
    system.add_process("c", "chooser", [])
    system.add_process("t", "taker", [])
    return system


def philosophers_2():
    source = """
    proc phil(first, second) {
        sem_p(first);
        sem_p(second);
        sem_v(second);
        sem_v(first);
    }
    """
    system = System(source)
    f0 = system.add_semaphore("f0", 1)
    f1 = system.add_semaphore("f1", 1)
    system.add_process("p0", "phil", [f0, f1])
    system.add_process("p1", "phil", [f1, f0])
    return system


WORKLOADS = [
    (two_incrementers, 12),
    (toss_and_sync, 8),
    (philosophers_2, 12),
]


class TestAgainstReference:
    @pytest.mark.parametrize("factory,depth", WORKLOADS, ids=lambda w: getattr(w, "__name__", w))
    def test_full_search_matches_reference_states(self, factory, depth):
        ref_states, ref_deadlocks, ref_violation = _reference_explore(factory, depth)
        report, deadlock_states = _production_explore(factory, depth, por=False)
        assert report.distinct_states == len(ref_states)
        assert deadlock_states == ref_deadlocks
        assert bool(report.violations) == ref_violation

    @pytest.mark.parametrize("factory,depth", WORKLOADS, ids=lambda w: getattr(w, "__name__", w))
    def test_por_preserves_deadlock_states_and_violations(self, factory, depth):
        ref_states, ref_deadlocks, ref_violation = _reference_explore(factory, depth)
        report, deadlock_states = _production_explore(factory, depth, por=True)
        # POR may visit fewer states but must find every deadlock *state*
        # and agree on violation existence.
        assert deadlock_states == ref_deadlocks
        assert bool(report.violations) == ref_violation
        assert report.distinct_states <= len(ref_states)
