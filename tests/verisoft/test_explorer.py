"""Tests for the stateless explorer."""


from tests.helpers import dfs_search
from repro import System
from repro.verisoft import Explorer, collect_output_traces, replay


def make_system(source, channels=(), semaphores=(), shared=(), processes=()):
    system = System(source)
    system.add_env_sink("out")
    for name, cap in channels:
        system.add_channel(name, capacity=cap)
    for name, n in semaphores:
        system.add_semaphore(name, initial=n)
    for name, init in shared:
        system.add_shared(name, initial=init)
    for name, proc, args in processes:
        system.add_process(name, proc, args)
    return system


class TestTossEnumeration:
    def test_single_toss_path_count(self):
        system = make_system(
            "proc main() { var t; t = VS_toss(3); send(out, t); }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10, por=False)
        assert report.paths_explored == 4
        assert report.ok

    def test_nested_toss_paths_multiply(self):
        system = make_system(
            """
            proc main() {
                var a;
                a = VS_toss(1);
                var b;
                b = VS_toss(2);
                send(out, a * 10 + b);
            }
            """,
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10, por=False)
        assert report.paths_explored == 6

    def test_toss_values_all_observed(self):
        system = make_system(
            "proc main() { var t; t = VS_toss(2); send(out, t); }",
            processes=[("p", "main", [])],
        )
        traces = collect_output_traces(system, "out", max_depth=10)
        assert traces == {(0,), (1,), (2,)}

    def test_toss_zero_single_path(self):
        system = make_system(
            "proc main() { var t; t = VS_toss(0); send(out, t); }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10)
        assert report.paths_explored == 1


class TestInterleavings:
    def test_two_independent_senders_no_por(self):
        source = """
        proc sender(ch) { send(ch, 1); }
        """
        system = System(source)
        system.add_channel("a", capacity=1)
        system.add_channel("b", capacity=1)
        system.add_channel("a2", capacity=1)  # unused by any process: naming check
        system.add_process("p1", "sender", [system.add_channel("c1", capacity=1)])
        system.add_process("p2", "sender", [system.add_channel("c2", capacity=1)])
        report = dfs_search(system, max_depth=10, por=False)
        # two interleavings of two independent sends
        assert report.paths_explored == 2

    def test_por_prunes_independent_interleavings(self):
        source = "proc sender(ch) { send(ch, 1); }"
        system = System(source)
        system.add_process("p1", "sender", [system.add_channel("c1", capacity=1)])
        system.add_process("p2", "sender", [system.add_channel("c2", capacity=1)])
        report = dfs_search(system, max_depth=10, por=True)
        assert report.paths_explored == 1

    def test_conflicting_ops_not_pruned(self):
        # Both processes receive from the same channel: order matters.
        source = """
        proc producer() { send(c, 1); send(c, 2); }
        proc taker(tag) { var v; v = recv(c); send(out, tag * 100 + v); }
        """
        system = make_system(
            source,
            channels=[("c", 2)],
            processes=[
                ("prod", "producer", []),
                ("t1", "taker", [1]),
                ("t2", "taker", [2]),
            ],
        )
        traces = collect_output_traces(system, "out", max_depth=20)
        flat = {frozenset(t) for t in traces}
        assert frozenset({101, 202}) in flat
        assert frozenset({102, 201}) in flat


class TestDeadlocks:
    def test_cross_semaphore_deadlock_found(self):
        source = """
        proc grab(first, second) {
            sem_p(first);
            sem_p(second);
            sem_v(second);
            sem_v(first);
        }
        """
        system = System(source)
        s1 = system.add_semaphore("s1", 1)
        s2 = system.add_semaphore("s2", 1)
        system.add_process("a", "grab", [s1, s2])
        system.add_process("b", "grab", [s2, s1])
        report = dfs_search(system, max_depth=20)
        assert report.deadlocks
        assert set(report.deadlocks[0].blocked) == {"a", "b"}

    def test_por_preserves_deadlock_detection(self):
        source = """
        proc grab(first, second) {
            sem_p(first);
            sem_p(second);
            sem_v(second);
            sem_v(first);
        }
        """
        for por in (False, True):
            system = System(source)
            s1 = system.add_semaphore("s1", 1)
            s2 = system.add_semaphore("s2", 1)
            system.add_process("a", "grab", [s1, s2])
            system.add_process("b", "grab", [s2, s1])
            report = dfs_search(system, max_depth=20, por=por)
            assert report.deadlocks, f"por={por}"

    def test_no_false_deadlock_on_clean_termination(self):
        system = make_system(
            "proc main() { send(out, 1); }", processes=[("p", "main", [])]
        )
        report = dfs_search(system, max_depth=10)
        assert not report.deadlocks

    def test_deadlock_trace_replays(self):
        source = """
        proc grab(first, second) {
            sem_p(first);
            sem_p(second);
            sem_v(second);
            sem_v(first);
        }
        """
        system = System(source)
        s1 = system.add_semaphore("s1", 1)
        s2 = system.add_semaphore("s2", 1)
        system.add_process("a", "grab", [s1, s2])
        system.add_process("b", "grab", [s2, s1])
        report = dfs_search(system, max_depth=20)
        run = replay(system, report.deadlocks[0].trace)
        assert run.is_deadlock()


class TestAssertionViolations:
    def test_race_violation_found(self):
        # Increment is not atomic: read, then write.
        source = """
        proc incr() {
            var v;
            v = read(counter);
            write(counter, v + 1);
        }
        proc checker() {
            var v;
            v = read(counter);
            if (v == 2) { VS_assert(false); }
        }
        """
        system = make_system(
            source,
            shared=[("counter", 0)],
            processes=[("i1", "incr", []), ("i2", "incr", []), ("c", "checker", [])],
        )
        report = dfs_search(system, max_depth=20, por=False)
        assert report.violations

    def test_lost_update_both_outcomes_seen(self):
        source = """
        proc incr() {
            var v;
            v = read(counter);
            write(counter, v + 1);
        }
        proc watcher(n) {
            var i = 0;
            while (i < n) { i = i + 1; }
            var v;
            v = read(counter);
            send(out, v);
        }
        """
        system = make_system(
            source,
            shared=[("counter", 0)],
            processes=[("i1", "incr", []), ("i2", "incr", []), ("w", "watcher", [0])],
        )
        traces = collect_output_traces(system, "out", max_depth=20)
        observed = {t[0] for t in traces if t}
        # Lost update (1) and both-complete (2), plus early reads (0).
        assert {1, 2} <= observed

    def test_stop_on_first(self):
        system = make_system(
            "proc main() { VS_assert(false); VS_assert(false); }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10, stop_on_first=True)
        assert len(report.violations) == 1
        assert report.paths_explored == 1


class TestEventsAndBudgets:
    def test_crash_event_recorded_once(self):
        system = make_system(
            "proc main() { var x = 1 / 0; }", processes=[("p", "main", [])]
        )
        report = dfs_search(system, max_depth=10)
        assert len(report.crashes) == 1
        assert "division by zero" in report.crashes[0].message

    def test_divergence_event(self):
        from repro.runtime import SystemConfig

        system = System(
            "proc main() { while (true) { var x = 1; } }",
            config=SystemConfig(divergence_budget=200),
        )
        system.add_process("p", "main")
        report = dfs_search(system, max_depth=10)
        assert len(report.divergences) == 1

    def test_max_depth_truncates(self):
        system = make_system(
            "proc main() { while (true) { send(out, 1); } }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=5)
        assert report.truncated
        assert report.max_depth_reached == 5

    def test_max_paths_budget(self):
        system = make_system(
            "proc main() { var t; t = VS_toss(9); send(out, t); }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10, max_paths=3)
        assert report.paths_explored == 3
        assert report.truncated

    def test_stats_not_double_counted_by_replay(self):
        # 4-leaf toss tree: 1 toss point, 4 sends, 4 paths.
        system = make_system(
            "proc main() { var t; t = VS_toss(3); send(out, t); }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10, por=False)
        assert report.toss_points == 1
        assert report.transitions_executed == 4

    def test_distinct_state_counting(self):
        system = make_system(
            "proc main() { var t; t = VS_toss(1); send(out, 0); }",
            processes=[("p", "main", [])],
        )
        report = dfs_search(system, max_depth=10, count_states=True, por=False)
        assert report.distinct_states is not None
        # Both toss branches produce bisimilar but distinct stores (t=0/1).
        assert report.distinct_states >= 3


class TestReplay:
    def test_replay_reproduces_outputs(self):
        system = make_system(
            """
            proc main() {
                var t;
                t = VS_toss(2);
                send(out, t * 10);
            }
            """,
            processes=[("p", "main", [])],
        )
        seen = []

        def on_leaf(run, trace):
            seen.append((tuple(run.env_outputs("out")), trace))

        Explorer(system, max_depth=10, por=False, on_leaf=on_leaf).run()
        assert len(seen) == 3
        for outputs, trace in seen:
            rerun = replay(system, trace)
            assert tuple(rerun.env_outputs("out")) == outputs
