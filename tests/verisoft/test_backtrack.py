"""Replay vs restore backtracking: exact observable equivalence.

The restore mode must be a pure performance substitution — the same
choice tree, the same POR decisions, the same events in the same order,
every counter identical except the ones that *measure the backtracking
itself* (``replays``/``replayed_transitions`` vs
``restores``/``undo_entries``/``checkpoint_memory_bytes``).  These
tests assert that contract on the paper's systems (Figure 2, Figure 3,
the bounded 5ESS application), on a seeded generator of random tiny
closed systems, and through the parallel driver and the state-cache
safe mode.
"""

import random

import pytest

from repro import SearchOptions, System, run_search
from repro.fiveess import build_app
from tests.statespace.conftest import (
    FIG2_SRC,
    FIG3_SRC,
    deadlock_system,
    figure_system,
    triage_signatures,
)

#: SearchStats fields that measure *how* the search backtracked rather
#: than *what* it explored; everything else must match exactly.
MODE_SPECIFIC = {
    "backtrack",
    "replays",
    "replayed_transitions",
    "restores",
    "undo_entries",
    "checkpoint_memory_bytes",
    "wall_time",
    "cpu_time",
}


def assert_equivalent(replay_report, restore_report):
    """Counter-for-counter, event-for-event equality of two reports."""
    a, b = replay_report.stats.as_dict(), restore_report.stats.as_dict()
    for key in a:
        if key in MODE_SPECIFIC:
            continue
        assert a[key] == b[key], f"{key}: replay={a[key]} restore={b[key]}"
    assert replay_report.stats.backtrack == "replay"
    assert restore_report.stats.backtrack == "restore"

    assert sorted(str(e) for e in replay_report.all_events()) == sorted(
        str(e) for e in restore_report.all_events()
    )
    assert triage_signatures(replay_report) == triage_signatures(restore_report)
    assert replay_report.summary() == restore_report.summary()

    # Restore mode never re-executes in sequential DFS; the parallel
    # driver still replays the frozen prefixes (and nothing else counts
    # them), so there `replays` stays 0 while some replayed transitions
    # may remain.
    assert restore_report.stats.replays == 0
    if replay_report.stats.replays:  # the search backtracked at all
        assert restore_report.stats.restores > 0


def both_modes(build_system, **options):
    reports = {}
    for mode in ("replay", "restore"):
        reports[mode] = run_search(
            build_system(), SearchOptions(backtrack=mode, **options)
        )
    return reports["replay"], reports["restore"]


class TestPaperSystems:
    def test_fig2_dfs(self):
        replay, restore = both_modes(
            lambda: figure_system(FIG2_SRC, "p"), max_depth=60
        )
        assert_equivalent(replay, restore)
        assert restore.stats.replayed_transitions == 0
        assert restore.stats.replay_fraction == 0.0

    def test_fig3_dfs(self):
        replay, restore = both_modes(
            lambda: figure_system(FIG3_SRC, "q"), max_depth=60
        )
        assert_equivalent(replay, restore)
        assert restore.stats.replayed_transitions == 0

    def test_deadlock_dfs(self):
        replay, restore = both_modes(deadlock_system, max_depth=20)
        assert_equivalent(replay, restore)
        assert not restore.ok  # the deadlock is still found

    def test_fiveess_dfs(self):
        replay, restore = both_modes(
            _fiveess_system, max_depth=12, max_events=10_000
        )
        assert_equivalent(replay, restore)
        assert restore.stats.replayed_transitions == 0
        # The headline claim, scaled down: replay re-executes a large
        # multiple of the fresh transitions; restore none at all.
        assert (
            replay.stats.replayed_transitions
            > replay.stats.transitions_executed
        )

    def test_fig2_parallel(self):
        replay, restore = both_modes(
            lambda: figure_system(FIG2_SRC, "p"),
            strategy="parallel",
            jobs=4,
            max_depth=60,
        )
        assert_equivalent(replay, restore)

    def test_fiveess_parallel(self):
        replay, restore = both_modes(
            _fiveess_system,
            strategy="parallel",
            jobs=2,
            max_depth=12,
            max_events=10_000,
        )
        assert_equivalent(replay, restore)


def _fiveess_system():
    app = build_app(n_lines=2, calls_per_line=1)
    return app.make_system(app.close(), with_maintenance=False)


# ---------------------------------------------------------------------------
# Randomized tiny closed systems
# ---------------------------------------------------------------------------

# Statement templates a generated process body draws from.  ``{i}`` is
# the process id, so asserts can be made to fail for specific
# process/toss combinations without being trivially always-false.
_OPS = (
    "send(ch, {i});",
    "var r{n}; r{n} = recv(ch);",
    "sem_p(lock); sem_v(lock);",
    "write(sv, {i});",
    "var t{n}; t{n} = VS_toss(2); write(sv, t{n});",
    "VS_assert(read(sv) != 42);",
    "sem_p(lock); write(sv, read(sv) + 1); sem_v(lock);",
    "send(out, read(sv));",
)


def random_system(seed: int) -> System:
    """A random tiny closed system: 2 processes, 1-3 ops each, drawn
    from channel/semaphore/shared/toss/assert templates.  Some seeds
    deadlock (unmatched recv), some violate (``sv`` reaching 42 is rare
    but possible via the toss-write ops), most terminate — all of it
    must be reported identically by both backtracking modes."""
    rng = random.Random(seed)
    procs = []
    for i in range(2):
        ops = [
            rng.choice(_OPS).format(i=i + 1, n=n)
            for n in range(rng.randint(1, 3))
        ]
        body = "\n    ".join(ops)
        procs.append(f"proc p{i}() {{\n    {body}\n}}")
    system = System("\n".join(procs))
    system.add_channel("ch", capacity=rng.choice([1, 2]))
    system.add_semaphore("lock", initial=1)
    system.add_shared("sv", initial=rng.choice([0, 41]))
    system.add_env_sink("out")
    for i in range(2):
        system.add_process(f"P{i}", f"p{i}", [])
    return system


class TestRandomizedParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_dfs_parity(self, seed):
        replay, restore = both_modes(
            lambda: random_system(seed), max_depth=30
        )
        assert_equivalent(replay, restore)
        assert restore.stats.replayed_transitions == 0

    @pytest.mark.parametrize("seed", range(0, 25, 5))
    def test_state_cache_safe_parity(self, seed):
        replay, restore = both_modes(
            lambda: random_system(seed),
            max_depth=30,
            state_cache="exact",
            cache_mode="safe",
        )
        assert_equivalent(replay, restore)

    @pytest.mark.parametrize("seed", range(0, 25, 5))
    def test_parallel_parity(self, seed):
        replay, restore = both_modes(
            lambda: random_system(seed),
            strategy="parallel",
            jobs=4,
            max_depth=30,
        )
        assert_equivalent(replay, restore)


class TestFallback:
    def test_unjournalable_system_falls_back_to_replay(self, monkeypatch):
        """A system with a non-journalable object silently degrades to
        replay mode (and says so in the reported stats)."""
        from repro.runtime.system import System as RuntimeSystem

        monkeypatch.setattr(RuntimeSystem, "journalable", lambda self: False)
        system = figure_system(FIG2_SRC, "p")
        report = run_search(system, SearchOptions(backtrack="restore", max_depth=60))
        assert report.stats.backtrack == "replay"
        assert report.stats.replays > 0
        assert report.stats.restores == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="backtrack"):
            run_search(
                figure_system(FIG2_SRC, "p"),
                SearchOptions(backtrack="checkpointless"),
            )
