"""Tests for partial-order reduction: footprints, independence,
persistent sets, sleep sets — and the key soundness property that POR
does not lose deadlocks or violations."""


from tests.helpers import dfs_search
from repro import System
from repro.cfg import build_cfgs
from repro.lang.parser import parse_program
from repro.verisoft.por import (
    ANY_OBJECT,
    TransitionSig,
    augment_sleep,
    filter_sleep,
    independent,
    process_footprint,
)


class TestFootprints:
    def cfgs(self, source):
        return build_cfgs(parse_program(source))

    def test_direct_names(self):
        cfgs = self.cfgs("proc main() { send(a, 1); sem_p(b); }")
        assert process_footprint(cfgs, "main", {}) == {"a", "b"}

    def test_through_called_procs(self):
        cfgs = self.cfgs(
            """
            proc helper() { send(inner, 1); }
            proc main() { helper(); send(outer, 2); }
            """
        )
        assert process_footprint(cfgs, "main", {}) == {"inner", "outer"}

    def test_launch_arg_resolution(self):
        from repro.runtime.values import ObjectRef

        cfgs = self.cfgs("proc main(ch) { send(ch, 1); }")
        fp = process_footprint(cfgs, "main", {"ch": ObjectRef("channel", "box")})
        assert fp == {"box"}

    def test_unresolvable_object_is_any(self):
        cfgs = self.cfgs("proc main(ch) { send(ch, 1); }")
        assert ANY_OBJECT in process_footprint(cfgs, "main", {})

    def test_unreachable_proc_not_included(self):
        cfgs = self.cfgs(
            """
            proc main() { send(a, 1); }
            proc unused() { send(b, 1); }
            """
        )
        assert process_footprint(cfgs, "main", {}) == {"a"}

    def test_recursion_terminates(self):
        cfgs = self.cfgs("proc main() { send(a, 1); main(); }")
        assert process_footprint(cfgs, "main", {}) == {"a"}

    def test_alias_resolution_of_looked_up_channels(self):
        from repro.dataflow.alias import analyze_aliases

        cfgs = self.cfgs(
            "proc main() { var c; c = channel('ctl'); send(c, 1); }"
        )
        assert ANY_OBJECT in process_footprint(cfgs, "main", {})
        points_to = analyze_aliases(cfgs)
        assert process_footprint(cfgs, "main", {}, points_to) == {"ctl"}

    def test_alias_resolution_reduces_interleavings(self):
        # Two processes each talking to their own looked-up channel:
        # alias-driven footprints let POR collapse the interleavings.
        source = """
        proc worker(which) {
            var c;
            if (which == 0) { c = channel('c0'); } else { c = channel('c1'); }
            send(c, 1);
        }
        """
        # The flow-insensitive merge makes both workers' footprints
        # {c0, c1} — overlapping, so no reduction here; but a helper with
        # a *fixed* lookup does reduce:
        fixed = """
        proc worker0() { var c; c = channel('c0'); send(c, 1); }
        proc worker1() { var c; c = channel('c1'); send(c, 1); }
        """
        system = System(fixed)
        system.add_channel("c0", capacity=1)
        system.add_channel("c1", capacity=1)
        system.add_process("w0", "worker0", [])
        system.add_process("w1", "worker1", [])
        report = dfs_search(system, max_depth=10, por=True)
        assert report.paths_explored == 1


class TestIndependence:
    def sig(self, process, obj, op="send", local=False):
        return TransitionSig(process, 0, op, obj, local)

    def test_same_process_dependent(self):
        assert not independent(self.sig("p", "a"), self.sig("p", "b"))

    def test_distinct_objects_independent(self):
        assert independent(self.sig("p", "a"), self.sig("q", "b"))

    def test_same_object_dependent(self):
        assert not independent(self.sig("p", "a"), self.sig("q", "a"))

    def test_local_independent_with_everything(self):
        local = self.sig("p", None, op="VS_assert", local=True)
        assert independent(local, self.sig("q", "a"))
        assert independent(self.sig("q", "a"), local)


class TestSleepSets:
    def sig(self, process, obj):
        return TransitionSig(process, 0, "send", obj, False)

    def test_filter_keeps_independent(self):
        sleep = frozenset({self.sig("p", "a"), self.sig("q", "b")})
        taken = self.sig("r", "a")
        kept = filter_sleep(sleep, taken)
        assert self.sig("q", "b") in kept
        assert self.sig("p", "a") not in kept

    def test_augment_adds_explored_siblings(self):
        taken = self.sig("r", "c")
        sibling = self.sig("p", "a")
        out = augment_sleep(frozenset(), [sibling], taken)
        assert sibling in out

    def test_augment_drops_dependent_siblings(self):
        taken = self.sig("r", "c")
        conflicting = self.sig("p", "c")
        out = augment_sleep(frozenset(), [conflicting], taken)
        assert conflicting not in out


def _ring_system(n, por):
    """n processes passing a token round a ring of channels."""
    source = """
    proc node(inp, outp, rounds) {
        var i = 0;
        while (i < rounds) {
            var t;
            t = recv(inp);
            send(outp, t + 1);
            i = i + 1;
        }
    }
    proc starter(inp, outp, rounds) {
        var i = 0;
        send(outp, 0);
        while (i < rounds) {
            var t;
            t = recv(inp);
            if (i + 1 < rounds) { send(outp, t + 1); }
            i = i + 1;
        }
    }
    """
    system = System(source)
    refs = [system.add_channel(f"ring_{i}", capacity=1) for i in range(n)]
    system.add_process("n0", "starter", [refs[0], refs[1 % n], 2])
    for i in range(1, n):
        system.add_process(f"n{i}", "node", [refs[i], refs[(i + 1) % n], 2])
    return system


def _philosophers(n, por_unused=None):
    source = """
    proc philosopher(first, second) {
        sem_p(first);
        sem_p(second);
        send(out, 'eat');
        sem_v(second);
        sem_v(first);
    }
    """
    system = System(source)
    system.add_env_sink("out")
    forks = [system.add_semaphore(f"fork_{i}", 1) for i in range(n)]
    for i in range(n):
        system.add_process(
            f"phil_{i}", "philosopher", [forks[i], forks[(i + 1) % n]]
        )
    return system


class TestReductionSoundness:
    def test_por_reduces_work_on_independent_systems(self):
        source = "proc worker(ch, n) { var i = 0; while (i < n) { send(ch, i); i = i + 1; } }"

        def build():
            system = System(source)
            for i in range(3):
                ref = system.add_channel(f"c{i}", capacity=5)
                system.add_process(f"w{i}", "worker", [ref, 3])
            return system

        full = dfs_search(build(), max_depth=30, por=False)
        reduced = dfs_search(build(), max_depth=30, por=True)
        assert reduced.ok and full.ok
        assert reduced.paths_explored < full.paths_explored
        assert reduced.paths_explored == 1  # fully independent

    def test_por_preserves_dining_philosopher_deadlock(self):
        full = dfs_search(_philosophers(3), max_depth=40, por=False)
        reduced = dfs_search(_philosophers(3), max_depth=40, por=True)
        assert full.deadlocks and reduced.deadlocks
        assert reduced.transitions_executed <= full.transitions_executed

    def test_por_preserves_distinct_states_on_ring(self):
        full = dfs_search(_ring_system(3, False), max_depth=40, por=False, count_states=True)
        reduced = dfs_search(_ring_system(3, True), max_depth=40, por=True, count_states=True)
        assert full.ok and reduced.ok
        # Reduction may visit fewer states but must not invent any.
        assert reduced.states_visited <= full.states_visited

    def test_por_preserves_violations(self):
        source = """
        proc incr() {
            var v;
            v = read(counter);
            write(counter, v + 1);
        }
        proc checker() {
            var v;
            v = read(counter);
            VS_assert(v <= 1);
        }
        """

        def build():
            system = System(source)
            system.add_shared("counter", initial=0)
            system.add_process("i1", "incr", [])
            system.add_process("i2", "incr", [])
            system.add_process("c", "checker", [])
            return system

        full = dfs_search(build(), max_depth=20, por=False)
        reduced = dfs_search(build(), max_depth=20, por=True)
        assert bool(full.violations) == bool(reduced.violations) == True  # noqa: E712

    def test_local_assert_forms_singleton_persistent_set(self):
        # One asserting process + one channel process: the assert should
        # not multiply interleavings under POR.
        source = """
        proc asserter(n) {
            var i = 0;
            while (i < n) { VS_assert(true); i = i + 1; }
        }
        proc sender(ch, n) {
            var i = 0;
            while (i < n) { send(ch, i); i = i + 1; }
        }
        """

        def build():
            system = System(source)
            ref = system.add_channel("c", capacity=10)
            system.add_process("a", "asserter", [4])
            system.add_process("s", "sender", [ref, 4])
            return system

        full = dfs_search(build(), max_depth=30, por=False)
        reduced = dfs_search(build(), max_depth=30, por=True)
        assert reduced.paths_explored == 1
        assert full.paths_explored > 1
