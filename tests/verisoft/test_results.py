"""Tests for exploration result types and their reporting helpers."""

from repro.verisoft.results import (
    AssertionViolationEvent,
    DeadlockEvent,
    ExplorationReport,
    ScheduleChoice,
    TossChoice,
    Trace,
    TraceStep,
)


def sample_trace():
    return Trace(
        choices=(ScheduleChoice("a"), TossChoice("a", 1), ScheduleChoice("b")),
        steps=(
            TraceStep("a", "send", "box"),
            TraceStep("b", "recv", "box"),
            TraceStep("b", "VS_assert", None),
        ),
    )


class TestTrace:
    def test_length_counts_choices(self):
        assert len(sample_trace()) == 3

    def test_describe_lists_steps(self):
        text = sample_trace().describe()
        assert "a: send on box" in text
        assert "b: VS_assert" in text

    def test_choice_descriptions(self):
        assert ScheduleChoice("p").describe() == "run p"
        assert TossChoice("p", 2).describe() == "p: VS_toss -> 2"


class TestEvents:
    def test_deadlock_describe(self):
        event = DeadlockEvent(sample_trace(), ("a", "b"))
        text = event.describe()
        assert "deadlock" in text
        assert "a, b" in text

    def test_violation_describe(self):
        event = AssertionViolationEvent(sample_trace(), "b", "main", 7)
        text = event.describe()
        assert "b" in text and "main" in text and "7" in text


class TestReport:
    def test_ok_flag(self):
        report = ExplorationReport()
        assert report.ok
        report.violations.append(
            AssertionViolationEvent(Trace((), ()), "p", "main", 0)
        )
        assert not report.ok

    def test_summary_mentions_truncation(self):
        report = ExplorationReport(truncated=True)
        assert "TRUNCATED" in report.summary()

    def test_summary_counts(self):
        report = ExplorationReport(paths_explored=3, states_visited=10)
        text = report.summary()
        assert "paths=3" in text and "states=10" in text

    def test_summary_hides_empty_optional_sections(self):
        report = ExplorationReport()
        assert "crashes" not in report.summary()
        assert "distinct" not in report.summary()

    def test_summary_shows_distinct_when_counted(self):
        report = ExplorationReport(distinct_states=5)
        assert "distinct=5" in report.summary()
