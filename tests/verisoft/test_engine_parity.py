"""Differential tests: the compiled engine vs the walking reference.

The compiled engine (:mod:`repro.runtime.compile`) must be
*observationally identical* to the tree-walking interpreter: the same
choice trees, the same counters (states, transitions, toss points,
paths), the same violation events with the same traces, and the same
triage groups — under every search configuration.  These tests run the
same searches under both engines and compare the results field by
field; any divergence is a bug in the compiler, full stop.
"""

import random

import pytest

from repro import SearchOptions, System, run_search
from repro.fiveess import build_app
from repro.verisoft import replay
from repro.verisoft.random_walk import random_walks


# ---------------------------------------------------------------------------
# Fixture systems: one per language/runtime feature family
# ---------------------------------------------------------------------------

TOSS_AND_CALL = """
proc helper(n) {
    var r;
    r = VS_toss(n);
    return r;
}
proc main() {
    var a;
    a = helper(2);
    var b;
    b = a + VS_toss(1);
    send(out, b);
}
"""

CHANNELS_AND_ASSERT = """
proc producer(c, n) {
    var i;
    i = 0;
    while (i < n) {
        send(c, i);
        i = i + 1;
    }
}
proc consumer(c, n) {
    var i;
    i = 0;
    var v;
    while (i < n) {
        v = recv(c);
        VS_assert(v <= n);
        i = i + 1;
    }
}
"""

SEMAPHORE_DEADLOCK = """
proc grab(a, b) {
    sem_p(a);
    sem_p(b);
    sem_v(b);
    sem_v(a);
}
"""

SHARED_AND_VIOLATION = """
proc writer(v) {
    var t;
    t = VS_toss(2);
    write(v, t);
}
proc checker(v) {
    var x;
    x = read(v);
    VS_assert(x < 2);
}
"""

ARRAYS_AND_RECORDS = """
proc main() {
    var a[3];
    var i;
    i = VS_toss(2);
    a[i] = i * 7;
    var r;
    r.x = a[i];
    r.y = r.x % 4;
    VS_assert(r.y != 3);
    send(out, r.y);
}
"""

SWITCH_HEAVY = """
proc main() {
    var t;
    t = VS_toss(3);
    var o;
    if (t == 0) { o = 10; }
    else {
        if (t == 1) { o = 11; }
        else {
            if (t == 2) { o = 12; } else { o = 13; }
        }
    }
    send(out, o);
    send(out, o - t);
}
"""


def toss_call_system():
    system = System(TOSS_AND_CALL)
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def channel_system():
    system = System(CHANNELS_AND_ASSERT)
    ref = system.add_channel("c", capacity=2)
    system.add_process("prod", "producer", [ref, 3])
    system.add_process("cons", "consumer", [ref, 3])
    return system


def deadlock_system():
    system = System(SEMAPHORE_DEADLOCK)
    s1 = system.add_semaphore("s1", initial=1)
    s2 = system.add_semaphore("s2", initial=1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


def shared_system():
    system = System(SHARED_AND_VIOLATION)
    v = system.add_shared("v", initial=0)
    system.add_process("w", "writer", [v])
    system.add_process("r", "checker", [v])
    return system


def arrays_system():
    system = System(ARRAYS_AND_RECORDS)
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def switch_system():
    system = System(SWITCH_HEAVY)
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


FIXTURES = [
    toss_call_system,
    channel_system,
    deadlock_system,
    shared_system,
    arrays_system,
    switch_system,
]


# ---------------------------------------------------------------------------
# Comparison helper
# ---------------------------------------------------------------------------


def report_key(report):
    """Everything observable about a report, as a comparable value."""
    return {
        "summary": report.summary(),
        "states": report.states_visited,
        "transitions": report.transitions_executed,
        "toss_points": report.toss_points,
        "paths": report.paths_explored,
        "max_depth": report.max_depth_reached,
        "distinct": report.distinct_states,
        "truncated": report.truncated,
        "incomplete": report.incomplete,
        "events": [
            (type(e).__name__, e.trace.choices, tuple(e.trace.steps))
            for e in report.all_events()
        ],
        "groups": [
            (g.signature, g.count) for g in report.triage()
        ],
    }


def both_engines(make_system, **options):
    walk = run_search(make_system(), SearchOptions(engine="walk", **options))
    compiled = run_search(make_system(), SearchOptions(engine="compiled", **options))
    assert walk.stats.engine == "walk"
    assert compiled.stats.engine == "compiled", (
        "fixture unexpectedly fell back to the walking engine"
    )
    return walk, compiled


# ---------------------------------------------------------------------------
# DFS parity, across every backtracking / caching configuration
# ---------------------------------------------------------------------------


class TestDfsParity:
    @pytest.mark.parametrize("make_system", FIXTURES)
    def test_default_options(self, make_system):
        walk, compiled = both_engines(make_system, max_depth=40)
        assert report_key(walk) == report_key(compiled)

    @pytest.mark.parametrize("make_system", FIXTURES)
    def test_backtrack_replay(self, make_system):
        walk, compiled = both_engines(
            make_system, max_depth=40, backtrack="replay"
        )
        assert report_key(walk) == report_key(compiled)

    @pytest.mark.parametrize("make_system", FIXTURES)
    def test_backtrack_restore(self, make_system):
        walk, compiled = both_engines(
            make_system, max_depth=40, backtrack="restore"
        )
        assert report_key(walk) == report_key(compiled)
        # Restore-mode journaling must record the same undo traffic.
        assert walk.stats.restores == compiled.stats.restores
        assert walk.stats.undo_entries == compiled.stats.undo_entries

    @pytest.mark.parametrize("make_system", FIXTURES)
    def test_state_cache_safe(self, make_system):
        walk, compiled = both_engines(
            make_system, max_depth=40, state_cache="exact", cache_mode="safe"
        )
        assert report_key(walk) == report_key(compiled)
        assert walk.stats.cache_hits == compiled.stats.cache_hits
        assert walk.stats.cache_misses == compiled.stats.cache_misses

    @pytest.mark.parametrize("make_system", FIXTURES)
    def test_no_por_count_states(self, make_system):
        walk, compiled = both_engines(
            make_system, max_depth=30, por=False, count_states=True
        )
        assert report_key(walk) == report_key(compiled)


class TestParallelParity:
    def test_jobs_4(self):
        walk, compiled = both_engines(
            channel_system, strategy="parallel", jobs=4, max_depth=40
        )
        assert report_key(walk) == report_key(compiled)

    def test_jobs_1_pipeline(self):
        walk, compiled = both_engines(
            shared_system, strategy="parallel", jobs=1, max_depth=40
        )
        assert report_key(walk) == report_key(compiled)


class TestRandomWalkParity:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_seeded_walks_identical(self, seed):
        walk = random_walks(
            toss_call_system(), walks=25, max_depth=30, seed=seed, engine="walk"
        )
        compiled = random_walks(
            toss_call_system(), walks=25, max_depth=30, seed=seed, engine="compiled"
        )
        assert compiled.stats.engine == "compiled"
        assert report_key(walk) == report_key(compiled)

    def test_seeded_walks_identical_with_events(self):
        walk = random_walks(
            shared_system(), walks=50, max_depth=30, seed=3, engine="walk"
        )
        compiled = random_walks(
            shared_system(), walks=50, max_depth=30, seed=3, engine="compiled"
        )
        assert report_key(walk) == report_key(compiled)


class TestRandomizedSchedules:
    """Drive identical random schedules through two live runs and compare
    every intermediate fingerprint — a finer probe than report parity."""

    @pytest.mark.parametrize("make_system", FIXTURES)
    def test_lockstep_fingerprints(self, make_system):
        for seed in (1, 2, 3):
            rng_a, rng_b = random.Random(seed), random.Random(seed)
            run_a = make_system().start(engine="walk")
            run_b = make_system().start(engine="compiled")
            assert run_b.engine == "compiled"
            run_a.start_processes()
            run_b.start_processes()
            for _ in range(60):
                assert run_a.state_fingerprint() == run_b.state_fingerprint()
                toss_a, toss_b = run_a.toss_pending(), run_b.toss_pending()
                assert (toss_a is None) == (toss_b is None)
                if toss_a is not None:
                    assert toss_a.name == toss_b.name
                    bound = toss_a.toss_request.bound
                    assert bound == toss_b.toss_request.bound
                    value = rng_a.randint(0, bound)
                    rng_b.randint(0, bound)
                    run_a.answer_toss(toss_a, value)
                    run_b.answer_toss(toss_b, value)
                    continue
                enabled_a = [p.name for p in run_a.enabled_processes()]
                enabled_b = [p.name for p in run_b.enabled_processes()]
                assert enabled_a == enabled_b
                if not enabled_a:
                    break
                pick = rng_a.choice(enabled_a)
                rng_b.choice(enabled_b)
                proc_a = next(p for p in run_a.processes if p.name == pick)
                proc_b = next(p for p in run_b.processes if p.name == pick)
                out_a = run_a.execute_visible(proc_a)
                out_b = run_b.execute_visible(proc_b)
                assert (out_a is None) == (out_b is None)
                if out_a is not None:
                    assert out_a.violated == out_b.violated
            statuses_a = [(p.name, p.status) for p in run_a.processes]
            statuses_b = [(p.name, p.status) for p in run_b.processes]
            assert statuses_a == statuses_b


class TestReplayAcrossEngines:
    def test_trace_found_on_walk_replays_on_compiled(self):
        report = run_search(
            deadlock_system(), SearchOptions(engine="walk", max_depth=20)
        )
        assert report.deadlocks
        trace = report.deadlocks[0].trace
        run = replay(deadlock_system(), trace, engine="compiled")
        assert run.engine == "compiled"
        assert not run.enabled_processes()

    def test_trace_found_on_compiled_replays_on_walk(self):
        report = run_search(
            shared_system(), SearchOptions(engine="compiled", max_depth=20)
        )
        assert report.violations
        trace = report.violations[0].trace
        run = replay(shared_system(), trace, engine="walk")
        assert any(p.status is not None for p in run.processes)


class TestFiveEssParity:
    """Counter parity on the bounded 5ESS case study — the acceptance
    bar of the compiled engine (same numbers, only faster)."""

    def test_bounded_5ess_counters_match(self):
        def make():
            app = build_app(n_lines=2, calls_per_line=1)
            return app.make_system(app.close(), with_maintenance=False)

        walk, compiled = both_engines(
            make, max_depth=40, max_paths=400, max_events=1000
        )
        assert report_key(walk) == report_key(compiled)
        assert walk.toss_points == compiled.toss_points
        assert [g.signature for g in walk.triage()] == [
            g.signature for g in compiled.triage()
        ]
