"""Tests for the span/event tracer and its Chrome trace export."""

import json

from repro.obs import Tracer, validate_chrome_trace
from repro.obs.tracer import EXPORT_FORMAT


class FakeClock:
    """A controllable monotonic clock (seconds)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRecording:
    def test_span_records_complete_event(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", cat="test", detail=7):
            clock.advance(0.25)
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["dur"] == 0.25 * 1e6
        assert event["args"] == {"detail": 7}

    def test_spans_nest(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(0.1)
            with tracer.span("inner"):
                clock.advance(0.1)
            clock.advance(0.1)
        by_name = {e["name"]: e for e in tracer.events}
        inner, outer = by_name["inner"], by_name["outer"]
        # The inner span lies strictly within the outer one.
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_span_recorded_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert [e["name"] for e in tracer.events] == ["boom"]

    def test_instant_and_counter(self):
        tracer = Tracer()
        tracer.instant("violation", process="P")
        tracer.counter("search", states=10, paths=2)
        instant, counter = tracer.events
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert counter["ph"] == "C"
        assert counter["args"] == {"states": 10, "paths": 2}

    def test_buffer_bounded_and_drops_counted(self):
        tracer = Tracer(max_events=3)
        for index in range(10):
            tracer.instant(f"e{index}")
        assert len(tracer.events) == 3
        assert tracer.dropped == 7
        trace = tracer.chrome_trace()
        assert trace["otherData"]["dropped_events"] == 7

    def test_phase_timings_aggregate(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.phase("search"):
            clock.advance(1.0)
        with tracer.phase("search"):
            clock.advance(0.5)
        with tracer.span("path", cat="dfs"):  # not a phase
            clock.advance(9.0)
        timings = tracer.phase_timings()
        assert timings == {"search": 1.5}


class TestChromeExport:
    def test_trace_is_schema_valid(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.instant("b")
        tracer.counter("c", n=1)
        trace = tracer.chrome_trace()
        assert validate_chrome_trace(trace) == []
        assert trace["displayTimeUnit"] == "ms"
        # First event is the process_name metadata record.
        assert trace["traceEvents"][0]["ph"] == "M"

    def test_events_sorted_by_timestamp(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.advance(2.0)
        tracer.instant("late")
        events = tracer.chrome_trace()["traceEvents"]
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps)

    def test_write_round_trips(self, tmp_path):
        tracer = Tracer()
        tracer.instant("x")
        path = tracer.write(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_validator_flags_problems(self):
        bad = {
            "traceEvents": [
                {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "no-dur"},
                {"ph": "i", "ts": 0, "pid": 1, "tid": 1, "name": "no-scope"},
                {"ph": "?", "ts": 0, "pid": 1, "tid": 1, "name": "odd"},
                {"ph": "X", "ts": 0, "pid": 1, "dur": 1},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) == 5  # bad dur, no scope, unknown ph, 2 missing keys
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]


class TestMerge:
    def test_merge_shifts_by_epoch_delta(self):
        coordinator = Tracer()
        worker = Tracer()
        worker.epoch_unix = coordinator.epoch_unix + 2.0  # started 2s later
        worker.instant("worker-event")
        coordinator.merge(worker.export(label="worker-1"))
        events = coordinator.events
        meta = events[0]
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "worker-1"}
        assert meta["pid"] == worker.export()["pid"]
        shifted = events[1]
        assert shifted["name"] == "worker-event"
        assert shifted["ts"] >= 2.0 * 1e6

    def test_merge_accumulates_drops(self):
        coordinator = Tracer()
        worker = Tracer(max_events=0)
        worker.instant("dropped")
        coordinator.merge(worker.export())
        assert coordinator.dropped == 1

    def test_merge_rejects_unknown_format(self):
        tracer = Tracer()
        try:
            tracer.merge({"format": "bogus", "events": []})
        except ValueError as err:
            assert "bogus" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_export_format_tag(self):
        assert Tracer().export()["format"] == EXPORT_FORMAT
