"""Tests for the hot-spot profiler: counter anchoring, parallel parity,
rendering and serialization."""

from repro import SearchOptions, Tracer, run_search
from repro.obs import HotSpotProfiler

from .conftest import deadlock_system, fig2_system


def profiled(system, **kwargs):
    report = run_search(system, SearchOptions(profile=True, **kwargs))
    assert report.profile is not None
    return report


class TestAnchoring:
    def test_totals_match_search_counters(self, fig2):
        report = profiled(fig2)
        profile = report.profile
        assert profile.total_transitions == report.transitions_executed
        assert sum(profile.tosses.values()) == report.toss_points
        assert sum(profile.depth_hist.values()) == report.transitions_executed

    def test_random_strategy_profiles_too(self, fig2):
        report = profiled(fig2, strategy="random", walks=5, seed=3)
        assert report.profile.total_transitions == report.transitions_executed
        assert sum(report.profile.tosses.values()) == report.toss_points

    def test_no_profile_by_default(self, fig2):
        report = run_search(fig2, SearchOptions())
        assert report.profile is None


def counters(report):
    """The profile dict minus ``phases_s`` — wall seconds per explorer
    phase, the one field that is real time rather than a deterministic
    counter.  The phase *names* must still agree run to run."""
    profile = report.profile.as_dict()
    timings = profile.pop("phases_s")
    assert all(value > 0 for value in timings.values())
    return profile, tuple(sorted(timings))


class TestParallelParity:
    def test_dfs_equals_parallel_jobs_1_and_4(self):
        dfs = counters(profiled(fig2_system()))
        one = counters(profiled(fig2_system(), strategy="parallel", jobs=1))
        four = counters(profiled(fig2_system(), strategy="parallel", jobs=4))
        assert dfs == one
        assert dfs == four

    def test_two_process_system_parity(self):
        sequential = profiled(deadlock_system(), max_depth=20)
        parallel = profiled(
            deadlock_system(),
            strategy="parallel",
            jobs=2,
            prefix_depth=2,
            max_depth=20,
        )
        assert counters(sequential) == counters(parallel)


class TestAggregation:
    def test_merged_skips_none_parts(self):
        part = HotSpotProfiler()
        part("schedule", "P", _FakeRequest(), 0, 1, True)
        merged = HotSpotProfiler.merged([None, part, None])
        assert merged.total_transitions == 1

    def test_add_sums_every_counter(self):
        a, b = HotSpotProfiler(), HotSpotProfiler()
        a("toss", "P", _FakeRequest(), 1, 2, True)
        b("toss", "P", _FakeRequest(), 1, 2, True)
        a.add(b)
        assert a.tosses[("p", 4)] == 2
        assert a.branching_hist[2] == 2


class _FakeRequest:
    """The slice of a runtime request the profiler reads."""

    proc_name = "p"
    node_id = 4
    op = "send"
    obj = None


class TestPresentation:
    def test_render_table_annotates_nodes(self, fig2):
        report = profiled(fig2)
        table = report.profile.render_table(5, system=fig2)
        assert "hot spots" in table
        assert "send" in table
        assert "p:" in table  # proc:node labels present
        assert "depth histogram" in table

    def test_render_table_without_system(self):
        profile = HotSpotProfiler()
        profile("schedule", "P", _FakeRequest(), 0, 1, True)
        table = profile.render_table()
        assert "p:4" in table

    def test_ranking_deterministic_on_ties(self):
        profile = HotSpotProfiler()
        for node in (9, 2, 5):
            profile.nodes[("p", node)] = 1
        assert [key for key, _ in profile.top_nodes()] == [
            ("p", 2),
            ("p", 5),
            ("p", 9),
        ]

    def test_as_dict_json_friendly(self, fig2):
        import json

        payload = profiled(fig2).profile.as_dict()
        json.dumps(payload)  # no tuple keys survive
        assert payload["total_transitions"] > 0
        assert all(":" in key for key in payload["nodes"])


class TestTracerIntegration:
    def test_dfs_emits_path_spans(self, fig2):
        tracer = Tracer()
        run_search(fig2, SearchOptions(tracer=tracer))
        names = {event["name"] for event in tracer.events}
        assert "path" in names
