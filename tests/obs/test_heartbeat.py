"""Tests for worker heartbeats, stall detection and recovery."""

import queue

from repro.obs import Heartbeat, HeartbeatMonitor, WorkerHealth


def beat(kind="beat", worker=100, prefix=0, states=0, transitions=0, at=0.0):
    return Heartbeat(
        kind=kind,
        worker=worker,
        prefix=prefix,
        states=states,
        transitions=transitions,
        sent_at=at,
    )


class TestWorkerHealth:
    def test_start_claims_prefix(self):
        record = WorkerHealth(100, now=0.0)
        record.note(beat("start", prefix=3, at=1.0))
        assert record.busy
        assert record.prefix == 3
        assert record.last_progress == 1.0

    def test_counters_moving_is_progress(self):
        record = WorkerHealth(100, now=0.0)
        record.note(beat("start", at=1.0))
        record.note(beat(states=5, transitions=9, at=2.0))
        assert record.last_progress == 2.0
        # Same counters again: seen, but no progress.
        record.note(beat(states=5, transitions=9, at=9.0))
        assert record.last_seen == 9.0
        assert record.last_progress == 2.0

    def test_done_frees_worker(self):
        record = WorkerHealth(100, now=0.0)
        record.note(beat("start", at=1.0))
        record.note(beat("done", at=2.0))
        assert not record.busy
        assert record.completed == 1
        assert "idle" in record.describe(now=3.0)

    def test_describe_busy_line(self):
        record = WorkerHealth(100, now=0.0)
        record.note(beat("start", prefix=2, at=1.0))
        record.note(beat(prefix=2, states=7, transitions=11, at=2.0))
        line = record.describe(now=5.0)
        assert "worker 100" in line
        assert "prefix 2" in line
        assert "states=7" in line
        assert "3.0s ago" in line


class TestMonitor:
    def test_stall_fires_once_then_recovery(self):
        warnings = []
        clock = [0.0]
        monitor = HeartbeatMonitor(
            stall_timeout=10.0, on_warn=warnings.append, clock=lambda: clock[0]
        )
        monitor.note(beat("start", at=0.0))
        monitor.note(beat(states=3, at=1.0))

        clock[0] = 5.0
        assert monitor.check_stalls() == []
        clock[0] = 20.0
        (stalled,) = monitor.check_stalls()
        assert stalled.worker == 100
        assert len(warnings) == 1
        assert "no progress" in warnings[0]
        # Stalled stays flagged; no duplicate warning.
        assert monitor.check_stalls() == []
        assert len(warnings) == 1
        assert any("STALLED" in line for line in monitor.lines())

        # Counters move again: recovery announced, flag cleared.
        monitor.note(beat(states=4, at=21.0))
        assert len(warnings) == 2
        assert "recovered" in warnings[1]
        clock[0] = 22.0
        assert monitor.check_stalls() == []

    def test_none_timeout_disables_detection(self):
        monitor = HeartbeatMonitor(stall_timeout=None)
        monitor.note(beat("start", at=0.0))
        assert monitor.check_stalls(now=1e9) == []

    def test_idle_workers_never_stall(self):
        monitor = HeartbeatMonitor(stall_timeout=1.0)
        monitor.note(beat("start", at=0.0))
        monitor.note(beat("done", at=1.0))
        assert monitor.check_stalls(now=100.0) == []

    def test_drain_consumes_queue(self):
        monitor = HeartbeatMonitor()
        pending = queue.Queue()
        pending.put(beat("start", worker=1, at=0.0))
        pending.put(beat(worker=1, states=2, at=1.0))
        pending.put(beat("start", worker=2, at=0.5))
        assert monitor.drain(pending) == 3
        assert sorted(monitor.workers) == [1, 2]

    def test_inflight_sums_busy_workers_only(self):
        monitor = HeartbeatMonitor()
        monitor.note(beat("start", worker=1, at=0.0))
        monitor.note(beat(worker=1, states=5, transitions=8, at=1.0))
        monitor.note(beat("start", worker=2, at=0.0))
        monitor.note(beat(worker=2, states=3, transitions=4, at=1.0))
        monitor.note(beat("done", worker=2, at=2.0))
        assert monitor.inflight() == (5, 8)

    def test_summary_snapshot(self):
        monitor = HeartbeatMonitor()
        monitor.note(beat("start", worker=1, at=0.0))
        monitor.note(beat("done", worker=1, at=1.0))
        summary = monitor.summary()
        assert summary == {
            "workers": 1,
            "stalled": 0,
            "subtrees_completed": 1,
        }

    def test_lines_ordered_by_worker(self):
        monitor = HeartbeatMonitor()
        monitor.note(beat("start", worker=7, at=0.0))
        monitor.note(beat("start", worker=3, at=0.0))
        lines = monitor.lines(now=1.0)
        assert "worker 3" in lines[0]
        assert "worker 7" in lines[1]
