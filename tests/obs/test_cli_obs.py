"""Golden-file tests for the CLI observability surface: ``repro search
--trace-out/--profile`` and the ``repro profile`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_chrome_trace

from .conftest import FIG2_SRC


@pytest.fixture()
def fig2_files(tmp_path):
    program = tmp_path / "fig2.rc"
    program.write_text(FIG2_SRC)
    description = {
        "program": "fig2.rc",
        "close": {"env_params": {"p": ["x"]}},
        "objects": [{"kind": "sink", "name": "out"}],
        "processes": [{"name": "P", "proc": "p", "args": []}],
    }
    system = tmp_path / "fig2.json"
    system.write_text(json.dumps(description))
    return system


def spans_nest(events):
    """Within each (pid, tid) track, complete events must nest: any two
    either disjoint or one containing the other."""
    tracks = {}
    for event in events:
        if event["ph"] == "X":
            tracks.setdefault((event["pid"], event["tid"]), []).append(event)
    for spans in tracks.values():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for span in spans:
            while stack and span["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack and span["ts"] + span["dur"] > (
                stack[-1]["ts"] + stack[-1]["dur"] + 1e-6
            ):
                return False  # overlaps without nesting
            stack.append(span)
    return True


class TestTraceExport:
    def test_fig2_trace_golden(self, fig2_files, tmp_path, capsys):
        trace_out = tmp_path / "trace.json"
        rc = main(
            ["search", str(fig2_files), "--trace-out", str(trace_out), "--profile"]
        )
        assert rc == 3  # the seeded assertion violation
        trace = json.loads(trace_out.read_text())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        assert spans_nest(events)
        names = {e["name"] for e in events}
        # Pipeline phases and per-path DFS spans are all on the timeline
        # (no "parse" phase: the CLI parses before close_program runs).
        for expected in ("build-system", "analyze", "transform",
                        "search", "path"):
            assert expected in names, expected
        captured = capsys.readouterr()
        assert "hot spots" in captured.out
        assert "wrote trace" in captured.err

    def test_manifest_written_next_to_trace(self, fig2_files, tmp_path):
        trace_out = tmp_path / "trace.json"
        main(["search", str(fig2_files), "--trace-out", str(trace_out)])
        manifest = json.loads((tmp_path / "trace.run.json").read_text())
        assert manifest["manifest_version"] == 1
        assert manifest["report"]["transitions_executed"] > 0
        assert "search" in manifest["phases"]
        assert str(trace_out) in manifest["artifacts"]

    def test_save_traces_dir_gets_manifest(self, fig2_files, tmp_path):
        traces = tmp_path / "traces"
        main(["search", str(fig2_files), "--save-traces", str(traces)])
        manifest = json.loads((traces / "run.json").read_text())
        saved = [path for path in manifest["artifacts"] if "traces" in path]
        assert saved  # the violation trace is recorded as an artifact


class TestProfileDeterminism:
    def _profile(self, fig2_files, tmp_path, jobs, name):
        stats = tmp_path / name
        args = ["search", str(fig2_files), "--profile", "--stats-json", str(stats)]
        if jobs:
            args += ["--strategy", "parallel", "--jobs", str(jobs)]
        main(args)
        return json.loads(stats.read_text())["profile"]

    def test_top_n_identical_sequential_vs_parallel(self, fig2_files, tmp_path):
        dfs = self._profile(fig2_files, tmp_path, None, "dfs.json")
        one = self._profile(fig2_files, tmp_path, 1, "one.json")
        four = self._profile(fig2_files, tmp_path, 4, "four.json")
        # phases_s holds wall seconds — the one legitimately
        # nondeterministic field.  Its *keys* (which phases ran) must
        # still agree; every counter must be bit-identical.
        timings = [profile.pop("phases_s") for profile in (dfs, one, four)]
        assert len({tuple(sorted(t)) for t in timings}) == 1
        assert all(v > 0 for t in timings for v in t.values())
        assert dfs == one == four
        assert dfs["total_transitions"] > 0

    def test_profile_subcommand(self, fig2_files, capsys):
        rc = main(["profile", str(fig2_files), "--top", "3"])
        assert rc == 3
        out = capsys.readouterr().out
        assert "top 3 CFG nodes" in out
        assert "toss points" in out

    def test_profile_subcommand_trace_out(self, fig2_files, tmp_path):
        trace_out = tmp_path / "p.json"
        main(["profile", str(fig2_files), "--trace-out", str(trace_out)])
        assert validate_chrome_trace(json.loads(trace_out.read_text())) == []
