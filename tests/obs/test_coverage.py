"""Tests for the coverage collector: exact counters, cross-engine and
cross-driver parity, merge edge cases, source-line projection.

The headline contract mirrors the scheduler's: coverage counters are
**bit-identical** across the walk and compiled engines, across
``jobs=1`` / ``jobs=4`` and the work-stealing scheduler, and across a
worker crash/requeue — every fresh edge is counted exactly once
system-wide, regardless of who executed it.
"""

import json
import pickle

import pytest

from repro import SearchOptions, run_search
from repro.obs import CoverageCollector
from repro.service import work_stealing_search

from .conftest import deadlock_system, fig2_system


def cov_key(report):
    """Every counter the collector owns, as a comparable value."""
    c = report.coverage
    return (
        dict(c.nodes),
        dict(c.edges),
        dict(c.toss_values),
        {p: frozenset(s) for p, s in c.process_nodes.items()},
    )


def _search(build, **kwargs):
    kwargs.setdefault("coverage", True)
    return run_search(build(), SearchOptions(**kwargs))


class TestCollector:
    def test_fig2_full_coverage(self):
        report = _search(fig2_system)
        cov = report.coverage
        assert cov.nodes_covered == cov.nodes_total > 0
        assert cov.edges_covered == cov.edges_total > 0
        assert cov.node_percent() == 100.0
        assert cov.unreached_nodes() == {}
        # The single process reached the whole universe.
        assert len(cov.process_nodes) == 1

    def test_node_counts_sum_to_trace_volume(self):
        # Every counted node visit is one executed CFG node on fresh
        # ground; the restore-mode DFS replays nothing, so node counts
        # are a complete execution census (edges: one per visit that
        # followed a predecessor).
        report = _search(fig2_system)
        cov = report.coverage
        assert sum(cov.nodes.values()) > report.transitions_executed
        assert sum(cov.edges.values()) <= sum(cov.nodes.values())

    def test_toss_value_distribution(self):
        report = _search(fig2_system)
        points = report.coverage.toss_points()
        assert points  # the closed Figure 2 has a toss point
        for (proc, node), point in points.items():
            assert point["bound"] is not None
            # Exhaustive search drives every value at the driven points.
            if point["values"]:
                assert point["missing"] == []

    def test_bounded_search_leaves_toss_values_missing(self):
        report = _search(fig2_system, max_paths=1)
        points = report.coverage.toss_points()
        missing = [p for p in points.values() if p["values"] and p["missing"]]
        assert missing  # one path cannot drive both toss outcomes

    def test_line_coverage_projection(self):
        report = _search(fig2_system)
        lines = report.coverage.line_coverage()
        assert lines
        for entry in lines.values():
            assert 0 < entry["covered"] <= entry["nodes"]
        reached, total, missing = report.coverage.lines_reached()
        assert reached == total and missing == []

    def test_render_summary(self):
        report = _search(fig2_system)
        text = report.coverage.render_summary(program="fig2.rc")
        assert text.startswith("coverage: fig2.rc: nodes")
        assert "(100.0%)" in text

    def test_as_dict_is_json_ready_and_self_contained(self):
        report = _search(fig2_system)
        payload = json.loads(json.dumps(report.coverage.as_dict()))
        assert payload["version"] == 1
        assert payload["summary"]["node_percent"] == 100.0
        assert payload["static"]["procs"]  # static tables ride along
        # Edge keys are proc:src:dst over the static arcs.
        for key in payload["edges"]:
            proc, src, dst = key.rsplit(":", 2)
            assert [int(src), int(dst)] in payload["static"]["procs"][proc]["arcs"]


class TestPickleAndMerge:
    def test_shard_roundtrip_keeps_counters_drops_parsers(self):
        report = _search(fig2_system)
        shard = pickle.loads(pickle.dumps(report.coverage))
        assert dict(shard.nodes) == dict(report.coverage.nodes)
        assert dict(shard.edges) == dict(report.coverage.edges)
        assert shard.static == report.coverage.static

    def test_unpickled_shard_refuses_new_segments(self):
        shard = pickle.loads(pickle.dumps(_search(fig2_system).coverage))
        with pytest.raises(RuntimeError):
            shard.segment("P", [("p", 0)], True)

    def test_merged_sums_counters(self):
        a = _search(fig2_system).coverage
        b = _search(fig2_system).coverage
        merged = CoverageCollector.merged([a, b, None])
        assert merged.nodes == a.nodes + b.nodes
        assert merged.edges == a.edges + b.edges
        assert merged.toss_values == a.toss_values + b.toss_values
        assert merged.nodes_total == a.nodes_total  # static adopted

    def test_empty_shard_merges_as_identity(self):
        # Satellite: a worker that never got a lease ships an empty
        # shard; merging it must not perturb anything.
        full = _search(fig2_system).coverage
        merged = CoverageCollector.merged([full, CoverageCollector()])
        assert merged.nodes == full.nodes
        assert merged.edges == full.edges
        assert merged.process_nodes == full.process_nodes
        assert merged.nodes_total == full.nodes_total

    def test_bare_collector_views_degrade(self):
        empty = CoverageCollector()
        assert empty.nodes_total == 0
        assert empty.node_percent() == 0.0
        assert empty.unreached_nodes() == {}
        assert empty.line_coverage() == {}


class TestEngineParity:
    """Walk and compiled engines record instruction-identical traces,
    and the restore/replay backtracking modes anchor identically."""

    @pytest.mark.parametrize("build", [fig2_system, deadlock_system],
                             ids=["fig2", "deadlock"])
    def test_walk_vs_compiled_vs_replay(self, build):
        base = cov_key(_search(build, engine="walk"))
        assert cov_key(_search(build, engine="compiled")) == base
        assert cov_key(_search(build, backtrack="replay")) == base


class TestDriverParity:
    """jobs=1 / jobs=4 / steal produce bit-identical counters."""

    def test_fig2_parallel_and_steal(self):
        base = cov_key(_search(fig2_system))
        assert cov_key(_search(fig2_system, strategy="parallel", jobs=1)) == base
        steal = work_stealing_search(
            fig2_system(), SearchOptions(coverage=True, jobs=1)
        )
        assert cov_key(steal) == base

    @pytest.mark.slow
    def test_deadlock_multiprocess(self):
        base = cov_key(_search(deadlock_system))
        four = _search(deadlock_system, strategy="parallel", jobs=4)
        assert cov_key(four) == base
        steal = work_stealing_search(
            deadlock_system(), SearchOptions(coverage=True, jobs=2)
        )
        assert cov_key(steal) == base

    @pytest.mark.slow
    def test_worker_death_after_partial_flush(self):
        # Satellite: SIGKILL a worker mid-subtree.  Its uncommitted
        # lease (and the coverage shard it would have flushed) is
        # discarded and the lease re-runs elsewhere, so the merged
        # counters still match the undisturbed sequential run exactly.
        base = cov_key(_search(deadlock_system, max_depth=40))
        report = work_stealing_search(
            deadlock_system(),
            SearchOptions(coverage=True, jobs=2, max_depth=40),
            kill_worker_after_paths=1,
        )
        assert cov_key(report) == base

    def test_stats_gauges_follow_the_merged_collector(self):
        report = work_stealing_search(
            deadlock_system(), SearchOptions(coverage=True, jobs=1)
        )
        assert report.stats.coverage_nodes == report.coverage.nodes_covered
        assert report.stats.coverage_nodes_total == report.coverage.nodes_total
        # The frontier gauge is live-only: drained by the time we merge.
        assert report.stats.frontier_pending == 0
