"""The HTML run report: self-contained rendering, per-line source
annotation, the ``repro report`` subcommand, and the end-to-end
search → manifest → report pipeline on a real Python program."""

import json
import pathlib
import re

import pytest

from repro import SearchOptions, run_search
from repro.cli import main
from repro.obs import build_manifest, load_manifest, render_html, write_report

from .conftest import FIG2_SRC, fig2_system

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def fig2_manifest():
    options = SearchOptions(coverage=True, profile=True)
    system = fig2_system()
    report = run_search(system, options)
    return build_manifest(
        argv=["repro", "search", "fig2.json", "--coverage"],
        options=options,
        report=report,
        system=system,
        language="rc",
        source={"path": "fig2.rc", "text": FIG2_SRC},
        phases={"search": 0.5},
    )


class TestRenderHtml:
    def test_self_contained_document(self):
        html = render_html(fig2_manifest())
        assert html.lstrip().startswith("<!DOCTYPE html>")
        # Self-contained: no external scripts, stylesheets, images or
        # fonts — the file must render from a mail attachment, offline.
        assert "<script src" not in html
        assert "<link" not in html
        assert not re.search(r"""(?:src|href)=["']https?://""", html)
        assert "<style>" in html  # inline CSS rides along

    def test_summary_and_provenance(self):
        html = render_html(fig2_manifest())
        assert "repro run report" in html
        assert "engine" in html and "language" in html  # meta table
        assert "rc" in html

    def test_coverage_tables_and_toss_points(self):
        html = render_html(fig2_manifest())
        assert "Coverage" in html
        assert "100.0%" in html  # fig2 reaches everything
        assert "Environment inputs" in html or "toss" in html.lower()

    def test_source_listing_annotates_lines(self):
        html = render_html(fig2_manifest())
        # Every executable source line renders as a hit span with its
        # visit count; fig2 covers all of them.
        hits = re.findall(r'class="ln hit"', html)
        assert hits
        assert 'class="ln miss"' not in html

    def test_triage_section_lists_violations(self):
        html = render_html(fig2_manifest())
        assert "assert" in html.lower()  # the seeded violation group

    def test_escapes_untrusted_text(self):
        manifest = fig2_manifest()
        manifest["program"]["text"] = "<script>alert(1)</script>\n"
        html = render_html(manifest)
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html

    def test_write_and_load_roundtrip(self, tmp_path):
        manifest = fig2_manifest()
        path = write_report(manifest, tmp_path / "report.html")
        assert path.read_text() == render_html(manifest)
        json_path = tmp_path / "run.json"
        json_path.write_text(json.dumps(manifest, default=str))
        assert load_manifest(json_path)["meta"]["tool"] == "repro"


@pytest.mark.slow
class TestPythonEndToEnd:
    """The acceptance pipeline: search a real ``.py`` program with
    coverage, write the manifest, render the report, and see the known
    unreachable-at-one-path lines called out."""

    def _pinger_manifest(self, tmp_path):
        run_json = tmp_path / "run.json"
        rc = main(
            [
                "search",
                str(EXAMPLES / "py_pinger.py"),
                "--coverage",
                "--max-paths",
                "1",
                "--manifest-out",
                str(run_json),
            ]
        )
        assert rc == 0
        return run_json

    def test_manifest_embeds_source_and_coverage(self, tmp_path):
        manifest = load_manifest(self._pinger_manifest(tmp_path))
        assert manifest["meta"]["language"] == "python"
        assert manifest["program"]["path"].endswith("py_pinger.py")
        assert "def " in manifest["program"]["text"]
        coverage = manifest["report"]["coverage"]
        assert coverage["summary"]["nodes_covered"] > 0
        # One path cannot drive both monitor branches: lines 34 and 44
        # of py_pinger.py stay dark (the CI smoke job asserts the same).
        assert 34 in coverage["summary"]["lines_missing"]
        assert 44 in coverage["summary"]["lines_missing"]

    def test_report_subcommand_renders_miss_lines(self, tmp_path, capsys):
        run_json = self._pinger_manifest(tmp_path)
        out_html = tmp_path / "report.html"
        cov_json = tmp_path / "cov.json"
        rc = main(
            ["report", str(run_json), "-o", str(out_html),
             "--coverage-json", str(cov_json)]
        )
        assert rc == 0
        html = out_html.read_text()
        assert 'class="ln miss"' in html
        assert 'class="ln hit"' in html
        assert not re.search(r"""(?:src|href)=["']https?://""", html)
        extracted = json.loads(cov_json.read_text())
        assert extracted["summary"]["lines_missing"] == [34, 44]

    @pytest.mark.parametrize(
        "program,depth",
        [("py_pinger.py", "14"), ("py_worker_pool.py", "10"),
         ("fig3.json", "40")],
        ids=["pinger", "worker-pool", "fig3"],
    )
    def test_jobs4_coverage_identical_to_jobs1(self, tmp_path, program, depth):
        # Cross-driver parity through the real CLI on both .py examples
        # and Figure 3: the coverage blocks must be byte-identical dicts.
        def run(jobs, name):
            out = tmp_path / name
            args = [
                "search", str(EXAMPLES / program),
                "--coverage", "--max-depth", depth,
                "--manifest-out", str(out),
            ]
            if jobs:
                args += ["--strategy", "parallel", "--jobs", str(jobs)]
            main(args)
            return load_manifest(out)["report"]["coverage"]

        assert run(None, "a.json") == run(4, "b.json")
