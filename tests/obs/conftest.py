"""Shared builders for the observability tests.

The Figure 2 program (closed, with a seeded assertion) is the golden
subject: its search tree is small and fully deterministic, so profiles
and traces can be compared exactly across strategies and job counts.
"""

import pytest

from repro import System, close_program

FIG2_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    var odds = 0;
    while (cnt < 3) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); odds = odds + 1; }
        cnt = cnt + 1;
    }
    VS_assert(odds < 3);
}
"""

DEADLOCK_SRC = """
proc grab(first, second) {
    sem_p(first);
    sem_p(second);
    sem_v(second);
    sem_v(first);
}
"""


def fig2_system():
    """Close Figure 2 and wrap it in a runnable single-process system."""
    closed = close_program(FIG2_SRC, env_params={"p": ["x"]})
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", "p", [])
    return system


def deadlock_system():
    """The classic lock-order deadlock pair (two processes, so the
    parallel driver has prefixes to fan out)."""
    system = System(DEADLOCK_SRC)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


@pytest.fixture()
def fig2():
    return fig2_system()
