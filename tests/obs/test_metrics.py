"""The Prometheus textfile exporter: exposition format, per-state job
counts, stat gauges, derived coverage percentage, atomic writes."""

from repro.obs import render_prometheus, write_metrics


def snapshots():
    return [
        {
            "id": "j-1",
            "name": "fig2",
            "state": "running",
            "stats": {
                "states_visited": 120,
                "paths_explored": 7,
                "wall_time": 1.25,
                "coverage_nodes": 9,
                "coverage_nodes_total": 12,
                "frontier_pending": 3,
            },
        },
        {"id": "j-2", "name": "pinger", "state": "queued", "stats": None},
    ]


class TestRender:
    def test_every_state_gets_a_series(self):
        text = render_prometheus(snapshots())
        assert 'repro_jobs{state="running"} 1' in text
        assert 'repro_jobs{state="queued"} 1' in text
        # Empty states still emit a zero so dashboards can sum safely.
        for state in ("stopped", "done", "failed"):
            assert f'repro_jobs{{state="{state}"}} 0' in text

    def test_job_info_and_gauges(self):
        text = render_prometheus(snapshots())
        assert 'repro_job_info{job="j-1",name="fig2",state="running"} 1' in text
        assert 'repro_states_visited{job="j-1",name="fig2"} 120' in text
        assert 'repro_wall_time_seconds{job="j-1",name="fig2"} 1.25' in text
        assert 'repro_frontier_pending_leases{job="j-1",name="fig2"} 3' in text
        # The heartbeat-less job contributes to counts only.
        assert 'repro_states_visited{job="j-2"' not in text

    def test_coverage_percent_derived(self):
        text = render_prometheus(snapshots())
        assert 'repro_coverage_percent{job="j-1",name="fig2"} 75.0000' in text

    def test_help_and_type_comments(self):
        text = render_prometheus(snapshots())
        assert "# HELP repro_jobs " in text
        assert "# TYPE repro_jobs gauge" in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        text = render_prometheus(
            [{"id": "j", "name": 'a"b\\c\nd', "state": "done", "stats": None}]
        )
        assert 'name="a\\"b\\\\c\\nd"' in text

    def test_custom_prefix(self):
        text = render_prometheus(snapshots(), prefix="verif")
        assert "verif_jobs{" in text
        assert "repro_" not in text


class TestWrite:
    def test_writes_atomically(self, tmp_path):
        target = tmp_path / "metrics" / "repro.prom"
        written = write_metrics(snapshots(), target)
        assert written == target
        assert target.read_text() == render_prometheus(snapshots())
        assert not target.with_name(target.name + ".tmp").exists()

    def test_overwrite_in_place(self, tmp_path):
        target = tmp_path / "repro.prom"
        write_metrics(snapshots(), target)
        write_metrics([], target)
        assert 'repro_jobs{state="running"} 0' in target.read_text()
