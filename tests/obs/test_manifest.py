"""Tests for the structured run manifest (run.json)."""

import json

from repro import SearchOptions, run_search
from repro.obs import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    build_manifest,
    git_info,
    host_info,
    write_manifest,
)


class TestBlocks:
    def test_minimal_manifest(self):
        manifest = build_manifest(argv=["repro", "search", "sys.json"])
        assert manifest["manifest_version"] == MANIFEST_VERSION
        assert manifest["tool"]["name"] == "repro"
        assert manifest["argv"] == ["repro", "search", "sys.json"]
        assert "created" in manifest
        assert manifest["host"]["python"]

    def test_host_info_fields(self):
        info = host_info()
        assert info["hostname"]
        assert info["cpu_count"] >= 1

    def test_git_info_none_outside_checkout(self, tmp_path):
        assert git_info(cwd=tmp_path) is None

    def test_full_manifest_records_run(self, fig2):
        options = SearchOptions(profile=True)
        report = run_search(fig2, options)
        manifest = build_manifest(
            options=options,
            report=report,
            system=fig2,
            phases={"search": 0.1234567},
            artifacts=["trace.json"],
            extra={"note": "test"},
        )
        assert manifest["options"]["profile"] is True
        assert manifest["report"]["transitions_executed"] == (
            report.transitions_executed
        )
        assert manifest["report"]["stats"]["states_visited"] == (
            report.states_visited
        )
        assert manifest["report"]["profile"]["total_transitions"] > 0
        assert manifest["report"]["violation_groups"] == 1
        assert manifest["system_fingerprint"] == fig2.fingerprint()
        assert manifest["phases"] == {"search": 0.123457}  # rounded
        assert manifest["artifacts"] == ["trace.json"]
        assert manifest["note"] == "test"
        json.dumps(manifest, default=str)  # serializable

    def test_fingerprint_failure_degrades_to_none(self):
        class Unfingerprintable:
            def fingerprint(self):
                raise RuntimeError("no")

        manifest = build_manifest(system=Unfingerprintable())
        assert manifest["system_fingerprint"] is None


class TestMetaBlock:
    """Every manifest writer (search / replay / shrink / the job
    service) goes through :func:`build_manifest`, so the one ``meta``
    provenance block is schema-stable: tool, version, engine, language."""

    def test_meta_keys_always_present(self):
        meta = build_manifest()["meta"]
        assert sorted(meta) == ["engine", "language", "tool", "version"]
        assert meta["tool"] == "repro"
        assert meta["version"]
        assert meta["engine"] is None and meta["language"] is None

    def test_engine_defaults_from_report_stats(self, fig2):
        report = run_search(fig2, SearchOptions(engine="compiled"))
        manifest = build_manifest(report=report, language="rc")
        assert manifest["meta"]["engine"] == "compiled"
        assert manifest["meta"]["language"] == "rc"
        # Legacy top-level keys stay for older consumers.
        assert manifest["language"] == "rc"
        assert manifest["tool"]["name"] == "repro"

    def test_explicit_engine_wins(self, fig2):
        report = run_search(fig2, SearchOptions())
        manifest = build_manifest(report=report, engine="walk")
        assert manifest["meta"]["engine"] == "walk"

    def test_source_block_embeds_program(self):
        manifest = build_manifest(source={"path": "a.py", "text": "x = 1\n"})
        assert manifest["program"] == {"path": "a.py", "text": "x = 1\n"}


class TestWriting:
    def test_directory_gets_default_name(self, tmp_path):
        path = write_manifest(tmp_path, {"manifest_version": 1})
        assert path == tmp_path / MANIFEST_NAME
        assert json.loads(path.read_text())["manifest_version"] == 1

    def test_file_path_used_verbatim(self, tmp_path):
        target = tmp_path / "deep" / "custom.run.json"
        path = write_manifest(target, {"a": 1})
        assert path == target
        assert json.loads(target.read_text()) == {"a": 1}
