"""Tests for define-use graph computation (reaching definitions)."""

from repro.cfg import build_cfgs
from repro.dataflow.alias import analyze_aliases
from repro.dataflow.defuse import compute_defuse
from repro.lang.parser import parse_program


def defuse_of(source, proc="main"):
    cfgs = build_cfgs(parse_program(source))
    points_to = analyze_aliases(cfgs)
    cfg = cfgs[proc]
    return cfg, compute_defuse(cfg, points_to.local_pointer_map(proc))


def node_by_desc(cfg, fragment):
    for node in cfg:
        if fragment in node.describe():
            return node
    raise AssertionError(f"no node matching {fragment!r}")


def has_arc(graph, def_desc, use_desc, var, cfg):
    d = node_by_desc(cfg, def_desc)
    u = node_by_desc(cfg, use_desc)
    return any(
        arc.def_node == d.id and arc.use_node == u.id and arc.var == var
        for arc in graph.arcs
    )


class TestStraightLine:
    def test_def_reaches_use(self):
        cfg, graph = defuse_of("proc main() { var a = 1; var b = a + 2; }")
        assert has_arc(graph, "a = 1", "b = a + 2", "a", cfg)

    def test_strong_def_kills(self):
        cfg, graph = defuse_of(
            "proc main() { var a = 1; a = 2; var b = a; }"
        )
        assert has_arc(graph, "a = 2", "b = a", "a", cfg)
        assert not has_arc(graph, "a = 1", "b = a", "a", cfg)

    def test_param_defined_at_start(self):
        cfg, graph = defuse_of("proc main(x) { var y = x; }")
        use = node_by_desc(cfg, "y = x")
        assert any(
            arc.def_node == cfg.start_id and arc.var == "x"
            for arc in graph.defs_feeding(use.id)
        )

    def test_chain_through_copies(self):
        cfg, graph = defuse_of(
            "proc main() { var a = 1; var b = a; var c = b; }"
        )
        assert has_arc(graph, "b = a", "c = b", "b", cfg)
        assert not has_arc(graph, "a = 1", "c = b", "a", cfg)


class TestBranches:
    def test_both_branch_defs_reach_join(self):
        cfg, graph = defuse_of(
            """
            proc main(c) {
                var a = 0;
                if (c == 1) { a = 1; } else { a = 2; }
                var b = a;
            }
            """
        )
        assert has_arc(graph, "a = 1", "b = a", "a", cfg)
        assert has_arc(graph, "a = 2", "b = a", "a", cfg)
        assert not has_arc(graph, "a = 0", "b = a", "a", cfg)

    def test_partial_kill_keeps_fallthrough(self):
        cfg, graph = defuse_of(
            """
            proc main(c) {
                var a = 0;
                if (c == 1) { a = 1; }
                var b = a;
            }
            """
        )
        assert has_arc(graph, "a = 0", "b = a", "a", cfg)
        assert has_arc(graph, "a = 1", "b = a", "a", cfg)

    def test_cond_node_uses(self):
        cfg, graph = defuse_of("proc main() { var a = 1; if (a == 1) { skip; } }")
        assert has_arc(graph, "a = 1", "cond a == 1", "a", cfg)


class TestLoops:
    def test_loop_carried_dependence(self):
        cfg, graph = defuse_of(
            "proc main() { var i = 0; while (i < 3) { i = i + 1; } }"
        )
        # i = i + 1 feeds both the loop condition and itself.
        assert has_arc(graph, "i = i + 1", "cond i < 3", "i", cfg)
        assert has_arc(graph, "i = i + 1", "i = i + 1", "i", cfg)
        assert has_arc(graph, "i = 0", "cond i < 3", "i", cfg)

    def test_init_does_not_reach_past_redef_in_loop(self):
        cfg, graph = defuse_of(
            """
            proc main() {
                var i = 0;
                var s = 0;
                while (i < 3) {
                    s = i;
                    i = i + 1;
                }
                var t = s;
            }
            """
        )
        assert has_arc(graph, "s = i", "t = s", "s", cfg)
        assert has_arc(graph, "s = 0", "t = s", "s", cfg)  # zero-iteration path


class TestWeakDefs:
    def test_array_store_does_not_kill(self):
        cfg, graph = defuse_of(
            """
            proc main() {
                var a[2];
                a[0] = 1;
                var b = a[1];
            }
            """
        )
        # Both the declaration and the weak store reach the use.
        assert has_arc(graph, "a[0] = 1", "b = a[1]", "a", cfg)
        assert has_arc(graph, "new_array(2)", "b = a[1]", "a", cfg)

    def test_pointer_store_reaches_use(self):
        cfg, graph = defuse_of(
            """
            proc main() {
                var x = 0;
                var p = &x;
                *p = 5;
                var y = x;
            }
            """
        )
        assert has_arc(graph, "*p = 5", "y = x", "x", cfg)
        assert has_arc(graph, "x = 0", "y = x", "x", cfg)  # weak def doesn't kill

    def test_call_with_address_arg_defines(self):
        cfg, graph = defuse_of(
            """
            proc main() {
                var x = 0;
                f(&x);
                var y = x;
            }
            proc f(p) { *p = 1; }
            """
        )
        assert has_arc(graph, "f(&x)", "y = x", "x", cfg)


class TestApiAndCounts:
    def test_uses_fed_by_and_defs_feeding_agree(self):
        cfg, graph = defuse_of("proc main() { var a = 1; var b = a; var c = a; }")
        d = node_by_desc(cfg, "a = 1")
        fed = graph.uses_fed_by(d.id)
        assert len(fed) == 2
        for arc in fed:
            assert arc in graph.defs_feeding(arc.use_node)

    def test_arc_count(self):
        cfg, graph = defuse_of("proc main() { var a = 1; var b = a; }")
        assert graph.arc_count() == len(graph.arcs)

    def test_no_false_arcs_for_unrelated_vars(self):
        cfg, graph = defuse_of("proc main() { var a = 1; var b = 2; var c = b; }")
        assert not has_arc(graph, "a = 1", "c = b", "a", cfg)
