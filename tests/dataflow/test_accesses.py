"""Tests for per-node use/def computation."""

from repro.cfg import build_cfgs
from repro.dataflow.accesses import node_access
from repro.lang.parser import parse_program


def node_by_desc(source, fragment, proc="main"):
    cfg = build_cfgs(parse_program(source))[proc]
    for node in cfg:
        if fragment in node.describe():
            return node
    raise AssertionError(f"no node matching {fragment!r}")


class TestAssignAccess:
    def test_simple_assignment(self):
        node = node_by_desc("proc main() { var a = 1; var b = a + 2; }", "b = a + 2")
        access = node_access(node)
        assert access.uses == {"a"}
        assert [(d.var, d.strong) for d in access.defs] == [("b", True)]

    def test_self_assignment_uses_and_defines(self):
        node = node_by_desc("proc main() { var a = 1; a = a + 1; }", "a = a + 1")
        access = node_access(node)
        assert access.uses == {"a"}
        assert access.defined_vars() == {"a"}

    def test_array_store_is_weak(self):
        node = node_by_desc(
            "proc main() { var a[3]; var i = 0; a[i] = 5; }", "a[i] = 5"
        )
        access = node_access(node)
        assert access.uses == {"a", "i"}
        assert [(d.var, d.strong) for d in access.defs] == [("a", False)]

    def test_field_store_is_weak(self):
        node = node_by_desc(
            "proc main() { var r; r = record(); r.f = 1; }", "r.f = 1"
        )
        access = node_access(node)
        assert [(d.var, d.strong) for d in access.defs] == [("r", False)]
        assert "r" in access.uses

    def test_deref_store_uses_pointer_defines_pointees(self):
        node = node_by_desc(
            "proc main() { var x = 0; var p = &x; *p = 7; }", "*p = 7"
        )
        access = node_access(node, {"p": {"x"}})
        assert access.uses == {"p"}
        assert [(d.var, d.strong) for d in access.defs] == [("x", False)]

    def test_deref_store_without_alias_info(self):
        node = node_by_desc(
            "proc main() { var x = 0; var p = &x; *p = 7; }", "*p = 7"
        )
        access = node_access(node)
        assert access.defs == ()

    def test_array_decl_defines_only(self):
        node = node_by_desc("proc main() { var a[4]; }", "new_array")
        access = node_access(node)
        assert access.uses == set()
        assert access.defined_vars() == {"a"}

    def test_rhs_address_of(self):
        node = node_by_desc("proc main() { var x = 0; var p = &x; }", "p = &x")
        access = node_access(node)
        assert "x" in access.uses
        assert access.defined_vars() == {"p"}


class TestCondReturnAccess:
    def test_cond_uses(self):
        node = node_by_desc("proc main(x, y) { if (x < y) { skip; } }", "cond x < y")
        access = node_access(node)
        assert access.uses == {"x", "y"}
        assert access.defs == ()

    def test_return_uses(self):
        node = node_by_desc("proc main(x) { return x + 1; }", "return x + 1")
        access = node_access(node)
        assert access.uses == {"x"}

    def test_bare_return(self):
        node = node_by_desc("proc main() { return; }", "return")
        access = node_access(node)
        assert access.uses == set()

    def test_start_uses_and_defines_nothing(self):
        cfg = build_cfgs(parse_program("proc main(x) { }"))["main"]
        access = node_access(cfg.start)
        assert access.uses == set() and access.defs == ()


class TestCallAccess:
    def test_user_call_args_used(self):
        node = node_by_desc(
            "proc main() { var a = 1; f(a); } proc f(x) { }", "f(a)"
        )
        access = node_access(node)
        assert access.uses == {"a"}

    def test_user_call_result_defined(self):
        node = node_by_desc(
            "proc main() { var r; r = f(); } proc f() { return 1; }", "r = f()"
        )
        access = node_access(node)
        assert access.defined_vars() == {"r"}

    def test_address_arg_to_user_call_weak_def(self):
        node = node_by_desc(
            "proc main() { var x = 0; f(&x); } proc f(p) { *p = 1; }", "f(&x)"
        )
        access = node_access(node)
        assert ("x", False) in [(d.var, d.strong) for d in access.defs]
        assert "x" in access.uses

    def test_address_arg_to_builtin_no_def(self):
        node = node_by_desc("proc main() { var x = 1; VS_assert(x); }", "VS_assert")
        access = node_access(node)
        assert access.defs == ()

    def test_pointer_var_arg_with_alias_info(self):
        source = "proc main() { var x = 0; var p = &x; f(p); } proc f(q) { *q = 1; }"
        node = node_by_desc(source, "f(p)")
        access = node_access(node, {"p": {"x"}})
        assert ("x", False) in [(d.var, d.strong) for d in access.defs]

    def test_builtin_recv_result(self):
        node = node_by_desc("proc main() { var v; v = recv(ch); }", "recv")
        access = node_access(node)
        assert access.defined_vars() == {"v"}

    def test_result_through_array_uses_index(self):
        node = node_by_desc(
            "proc main() { var a[2]; var i = 0; a[i] = recv(ch); }", "recv"
        )
        access = node_access(node)
        assert "i" in access.uses
        assert ("a", False) in [(d.var, d.strong) for d in access.defs]
