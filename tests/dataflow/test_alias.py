"""Tests for the Andersen-style may-alias analysis."""

from repro.cfg import build_cfgs
from repro.dataflow.alias import ObjLoc, VarLoc, analyze_aliases
from repro.lang.parser import parse_program


def pts(source):
    cfgs = build_cfgs(parse_program(source))
    return analyze_aliases(cfgs)


class TestBasics:
    def test_address_of(self):
        result = pts("proc main() { var x = 0; var p = &x; }")
        assert VarLoc("main", "x") in result.var_points_to("main", "p")

    def test_copy(self):
        result = pts("proc main() { var x = 0; var p = &x; var q = p; }")
        assert VarLoc("main", "x") in result.var_points_to("main", "q")

    def test_non_pointer_expr_contributes_nothing(self):
        result = pts("proc main() { var x = 0; var y = x + 1; }")
        assert result.var_points_to("main", "y") == set()

    def test_store_through_pointer(self):
        result = pts(
            """
            proc main() {
                var x = 0;
                var y = 0;
                var p = &x;
                var pp = &p;
                *pp = &y;
            }
            """
        )
        # p may now point to y as well.
        targets = result.var_points_to("main", "p")
        assert VarLoc("main", "x") in targets
        assert VarLoc("main", "y") in targets

    def test_load_through_pointer(self):
        result = pts(
            """
            proc main() {
                var x = 0;
                var p = &x;
                var pp = &p;
                var q = *pp;
            }
            """
        )
        assert VarLoc("main", "x") in result.var_points_to("main", "q")

    def test_flow_insensitivity_merges(self):
        result = pts(
            """
            proc main(c) {
                var x = 0;
                var y = 0;
                var p = &x;
                if (c == 1) { p = &y; }
            }
            """
        )
        targets = result.var_points_to("main", "p")
        assert {VarLoc("main", "x"), VarLoc("main", "y")} <= targets

    def test_container_collapse(self):
        result = pts(
            """
            proc main() {
                var x = 0;
                var a[2];
                a[0] = &x;
                var p = a[1];
            }
            """
        )
        assert VarLoc("main", "x") in result.var_points_to("main", "p")

    def test_record_field_collapse(self):
        result = pts(
            """
            proc main() {
                var x = 0;
                var r;
                r = record();
                r.ptr = &x;
                var p = r.ptr;
            }
            """
        )
        assert VarLoc("main", "x") in result.var_points_to("main", "p")


class TestInterprocedural:
    def test_param_passing(self):
        result = pts(
            "proc main() { var x = 0; f(&x); } proc f(p) { *p = 1; }"
        )
        assert VarLoc("main", "x") in result.var_points_to("f", "p")

    def test_return_value(self):
        result = pts(
            """
            proc main() { var x = 0; var p; p = f(&x); }
            proc f(q) { return q; }
            """
        )
        assert VarLoc("main", "x") in result.var_points_to("main", "p")

    def test_context_insensitivity_merges_callers(self):
        result = pts(
            """
            proc main() {
                var x = 0;
                var y = 0;
                f(&x);
                f(&y);
            }
            proc f(p) { }
            """
        )
        targets = result.var_points_to("f", "p")
        assert {VarLoc("main", "x"), VarLoc("main", "y")} <= targets

    def test_nonlocal_pointees(self):
        result = pts("proc main() { var x = 0; f(&x); } proc f(p) { *p = 1; }")
        nonlocal_ = result.nonlocal_pointees("f", "p")
        assert VarLoc("main", "x") in nonlocal_

    def test_local_pointer_map(self):
        result = pts("proc main() { var x = 0; var p = &x; *p = 2; }")
        local = result.local_pointer_map("main")
        assert local["p"] == {"x"}

    def test_extern_call_returns_no_pointers(self):
        result = pts(
            "extern proc env(); proc main() { var p; p = env(); }"
        )
        assert result.var_points_to("main", "p") == set()


class TestObjectReferences:
    def test_channel_lookup(self):
        result = pts("proc main() { var c; c = channel('box'); }")
        assert ObjLoc("box") in result.var_points_to("main", "c")

    def test_object_ref_through_call(self):
        result = pts(
            """
            proc main() { var c; c = channel('box'); use(c); }
            proc use(ch) { send(ch, 1); }
            """
        )
        assert ObjLoc("box") in result.var_points_to("use", "ch")

    def test_objects_of_string_literal(self):
        result = pts("proc main() { send(box, 1); }")
        from repro.lang import ast

        assert result.objects_of("main", ast.StrLit("box")) == {"box"}

    def test_objects_of_variable(self):
        result = pts("proc main() { var c; c = channel('box'); send(c, 1); }")
        from repro.lang import ast

        assert result.objects_of("main", ast.Name("c")) == {"box"}

    def test_objects_of_unknown_variable_is_none(self):
        result = pts("proc main(c) { send(c, 1); }")
        from repro.lang import ast

        assert result.objects_of("main", ast.Name("c")) is None

    def test_pointer_mailed_through_channel(self):
        result = pts(
            """
            proc a() { var x = 0; send(box, &x); }
            proc b() { var p; p = recv(box); *p = 1; }
            """
        )
        assert VarLoc("a", "x") in result.var_points_to("b", "p")

    def test_pointer_through_shared_var(self):
        result = pts(
            """
            proc a() { var x = 0; write(sv, &x); }
            proc b() { var p; p = read(sv); }
            """
        )
        assert VarLoc("a", "x") in result.var_points_to("b", "p")

    def test_pointer_through_dynamic_channel(self):
        result = pts(
            """
            proc a() { var c; c = channel('m'); var x = 0; send(c, &x); }
            proc b() { var c; c = channel('m'); var p; p = recv(c); }
            """
        )
        assert VarLoc("a", "x") in result.var_points_to("b", "p")
