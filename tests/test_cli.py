"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

OPEN_RC = """
extern proc env();

proc main() {
    var x;
    x = env();
    if (x % 2 == 0) { send(out, 'even'); } else { send(out, 'odd'); }
}
"""

DEADLOCK_RC = """
proc grab(first, second) {
    sem_p(first);
    sem_p(second);
    sem_v(second);
    sem_v(first);
}
"""


@pytest.fixture()
def open_file(tmp_path):
    path = tmp_path / "open.rc"
    path.write_text(OPEN_RC)
    return path


class TestClose:
    def test_close_to_stdout(self, open_file, capsys):
        assert main(["close", str(open_file)]) == 0
        out = capsys.readouterr().out
        assert "VS_toss(1)" in out
        assert "proc main()" in out

    def test_close_to_file(self, open_file, tmp_path, capsys):
        output = tmp_path / "closed.rc"
        assert main(["close", str(open_file), "-o", str(output)]) == 0
        assert "VS_toss" in output.read_text()

    def test_closed_output_reparses(self, open_file, tmp_path):
        from repro.lang.parser import parse_program

        output = tmp_path / "closed.rc"
        main(["close", str(open_file), "-o", str(output)])
        parse_program(output.read_text())

    def test_stats_flag(self, open_file, capsys):
        main(["close", str(open_file), "--stats"])
        err = capsys.readouterr().err
        assert "closed 1 procedure" in err

    def test_env_param_flag(self, tmp_path, capsys):
        path = tmp_path / "p.rc"
        path.write_text("proc main(x) { if (x > 0) { send(out, 1); } }")
        assert main(["close", str(path), "--env-param", "main:x"]) == 0
        out = capsys.readouterr().out
        assert "proc main()" in out  # parameter removed

    def test_bad_env_param_syntax(self, open_file):
        with pytest.raises(SystemExit):
            main(["close", str(open_file), "--env-param", "nonsense"])

    def test_missing_file(self, tmp_path, capsys):
        assert main(["close", str(tmp_path / "nope.rc")]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.rc"
        path.write_text("proc main( {")
        assert main(["close", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_c_input(self, tmp_path, capsys):
        pytest.importorskip("pycparser")
        path = tmp_path / "open.c"
        path.write_text(
            "int env();\nvoid main() { int x = env(); if (x) { send(out, 1); } }"
        )
        assert main(["close", str(path)]) == 0
        assert "VS_toss" in capsys.readouterr().out


class TestAnalyzeAndGraph:
    def test_analyze_output(self, open_file, capsys):
        assert main(["analyze", str(open_file)]) == 0
        out = capsys.readouterr().out
        assert "proc main" in out
        assert "N_I" in out

    def test_graph_stdout(self, open_file, capsys):
        assert main(["graph", str(open_file)]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_graph_closed_to_dir(self, open_file, tmp_path, capsys):
        out_dir = tmp_path / "dots"
        assert (
            main(["graph", str(open_file), "--closed", "--out-dir", str(out_dir)]) == 0
        )
        assert (out_dir / "main.dot").exists()

    def test_graph_unknown_proc(self, open_file):
        with pytest.raises(SystemExit):
            main(["graph", str(open_file), "--proc", "nope"])


class TestSearchFrontEnd:
    def _write_system(self, tmp_path, program_text, description):
        program = tmp_path / "prog.rc"
        program.write_text(program_text)
        description = dict(description, program="prog.rc")
        system = tmp_path / "system.json"
        system.write_text(json.dumps(description))
        return system

    def test_search_clean_system(self, tmp_path, capsys):
        system = self._write_system(
            tmp_path,
            OPEN_RC,
            {
                "close": {},
                "objects": [{"kind": "sink", "name": "out"}],
                "processes": [{"name": "m", "proc": "main", "args": []}],
            },
        )
        assert main(["search", str(system)]) == 0
        assert "paths=2" in capsys.readouterr().out

    def test_search_finds_deadlock_exit_code(self, tmp_path, capsys):
        system = self._write_system(
            tmp_path,
            DEADLOCK_RC,
            {
                "objects": [
                    {"kind": "semaphore", "name": "s1", "initial": 1},
                    {"kind": "semaphore", "name": "s2", "initial": 1},
                ],
                "processes": [
                    {
                        "name": "a",
                        "proc": "grab",
                        "args": [{"object": "s1"}, {"object": "s2"}],
                    },
                    {
                        "name": "b",
                        "proc": "grab",
                        "args": [{"object": "s2"}, {"object": "s1"}],
                    },
                ],
            },
        )
        assert main(["search", str(system), "--max-depth", "20"]) == 3
        out = capsys.readouterr().out
        assert "deadlock" in out

    def test_random_strategy(self, tmp_path, capsys):
        system = self._write_system(
            tmp_path,
            OPEN_RC,
            {
                "close": {},
                "objects": [{"kind": "sink", "name": "out"}],
                "processes": [{"name": "m", "proc": "main", "args": []}],
            },
        )
        assert main(["search", str(system), "--strategy", "random", "--walks", "5"]) == 0
        assert "paths=5" in capsys.readouterr().out

    def test_bad_json_reports_schema(self, tmp_path):
        system = tmp_path / "system.json"
        system.write_text("{not json")
        with pytest.raises(SystemExit) as err:
            main(["search", str(system)])
        assert "schema" in str(err.value)

    def test_unknown_object_reference(self, tmp_path):
        system = self._write_system(
            tmp_path,
            DEADLOCK_RC,
            {
                "objects": [],
                "processes": [
                    {"name": "a", "proc": "grab", "args": [{"object": "ghost"}, 1]}
                ],
            },
        )
        with pytest.raises(SystemExit):
            main(["search", str(system)])


DEADLOCK_DESCRIPTION = {
    "objects": [
        {"kind": "semaphore", "name": "s1", "initial": 1},
        {"kind": "semaphore", "name": "s2", "initial": 1},
    ],
    "processes": [
        {"name": "a", "proc": "grab", "args": [{"object": "s1"}, {"object": "s2"}]},
        {"name": "b", "proc": "grab", "args": [{"object": "s2"}, {"object": "s1"}]},
    ],
}


class TestCounterexampleCommands:
    """search --save-traces/--stats-json plus replay and shrink."""

    def _deadlock_system(self, tmp_path):
        program = tmp_path / "prog.rc"
        program.write_text(DEADLOCK_RC)
        description = dict(DEADLOCK_DESCRIPTION, program="prog.rc")
        system = tmp_path / "system.json"
        system.write_text(json.dumps(description))
        return system

    def test_search_exit_codes(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        assert main(["search", str(system), "--max-depth", "20"]) == 3
        out = capsys.readouterr().out
        assert "distinct group" in out

    def test_stats_json(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        stats = tmp_path / "stats.json"
        main(["search", str(system), "--max-depth", "20", "--stats-json", str(stats)])
        payload = json.loads(stats.read_text())
        assert payload["strategy"] == "dfs"
        assert payload["paths_explored"] >= 1
        assert "states_per_second" in payload

    def test_save_traces_writes_replayable_files(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        traces = tmp_path / "traces"
        assert (
            main(
                [
                    "search",
                    str(system),
                    "--max-depth",
                    "20",
                    "--save-traces",
                    str(traces),
                ]
            )
            == 3
        )
        files = sorted(traces.glob("*.json"))
        assert files
        doc = json.loads(files[0].read_text())
        assert doc["format"] == "repro-trace"
        # Traces embed the system: replay needs no extra arguments.
        capsys.readouterr()
        assert main(["replay", str(files[0])]) == 0
        assert "reproduced" in capsys.readouterr().out

    def _saved_trace(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        traces = tmp_path / "traces"
        main(["search", str(system), "--max-depth", "20", "--save-traces", str(traces)])
        capsys.readouterr()
        return sorted(traces.glob("*.json"))[0]

    def test_replay_with_explicit_system(self, tmp_path, capsys):
        trace = self._saved_trace(tmp_path, capsys)
        system = tmp_path / "system.json"
        assert main(["replay", str(trace), "--system", str(system)]) == 0

    def test_replay_show_trace(self, tmp_path, capsys):
        trace = self._saved_trace(tmp_path, capsys)
        assert main(["replay", str(trace), "--show-trace"]) == 0
        assert "sem_p" in capsys.readouterr().out

    def test_replay_not_reproduced_exits_1(self, tmp_path, capsys):
        trace = self._saved_trace(tmp_path, capsys)
        doc = json.loads(trace.read_text())
        # Fixed program: both processes take the locks in one order.
        doc["system"]["description"]["processes"][1]["args"] = [
            {"object": "s1"},
            {"object": "s2"},
        ]
        trace.write_text(json.dumps(doc))
        assert main(["replay", str(trace)]) == 1

    def test_replay_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "other"}))
        assert main(["replay", str(bad)]) == 2

    def test_shrink_writes_minimal_trace(self, tmp_path, capsys):
        trace = self._saved_trace(tmp_path, capsys)
        out = tmp_path / "min.json"
        assert main(["shrink", str(trace), "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["shrink"]["original_choices"] >= len(doc["choices"])
        capsys.readouterr()
        assert main(["replay", str(out)]) == 0

    def test_shrink_in_place_by_default(self, tmp_path, capsys):
        trace = self._saved_trace(tmp_path, capsys)
        assert main(["shrink", str(trace)]) == 0
        assert "shrink" in json.loads(trace.read_text())

    def test_replay_module_factory(self, tmp_path, capsys):
        # A factory that doesn't exist is a usage error...
        trace = self._saved_trace(tmp_path, capsys)
        with pytest.raises(SystemExit):
            main(["replay", str(trace), "--module", "repro.fiveess.app:nope"])
        with pytest.raises(SystemExit):
            main(["replay", str(trace), "--module", "no-colon"])


class TestMisc:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestStateCacheFlags:
    """--state-cache / --cache-bits / --cache-mode and the --jobs
    oversubscription warning."""

    def _deadlock_system(self, tmp_path):
        program = tmp_path / "prog.rc"
        program.write_text(DEADLOCK_RC)
        description = dict(DEADLOCK_DESCRIPTION, program="prog.rc")
        system = tmp_path / "system.json"
        system.write_text(json.dumps(description))
        return system

    def test_state_cache_exact_end_to_end(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        assert (
            main(["search", str(system), "--max-depth", "20", "--state-cache", "exact"])
            == 3
        )
        out = capsys.readouterr().out
        assert "cache=exact" in out
        assert "deadlock" in out

    def test_cache_stats_reach_the_json_dump(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        stats = tmp_path / "stats.json"
        main(
            [
                "search",
                str(system),
                "--max-depth",
                "20",
                "--state-cache",
                "hashcompact",
                "--stats-json",
                str(stats),
            ]
        )
        payload = json.loads(stats.read_text())
        assert payload["state_cache"] == "hashcompact"
        assert payload["cache_stored"] > 0
        assert payload["cache_bytes_per_state"] == 16.0

    def test_saved_trace_records_cache_options(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        traces = tmp_path / "traces"
        main(
            [
                "search",
                str(system),
                "--max-depth",
                "20",
                "--state-cache",
                "bitstate",
                "--cache-bits",
                "12",
                "--save-traces",
                str(traces),
            ]
        )
        doc = json.loads(sorted(traces.glob("*.json"))[0].read_text())
        options = doc["search"]["options"]
        assert options["state_cache"] == "bitstate"
        assert options["cache_bits"] == 12
        assert options["cache_mode"] == "safe"

    def test_bad_cache_choice_rejected_by_argparse(self, tmp_path):
        system = self._deadlock_system(tmp_path)
        with pytest.raises(SystemExit):
            main(["search", str(system), "--state-cache", "lru"])

    def test_jobs_oversubscription_warns_once(self, tmp_path, capsys):
        import os

        system = self._deadlock_system(tmp_path)
        too_many = (os.cpu_count() or 1) + 7
        main(
            [
                "search",
                str(system),
                "--strategy",
                "parallel",
                "--jobs",
                str(too_many),
                "--max-depth",
                "20",
            ]
        )
        err = capsys.readouterr().err
        warnings = [line for line in err.splitlines() if line.startswith("warning:")]
        assert len(warnings) == 1
        assert f"--jobs {too_many} exceeds" in warnings[0]
        assert "CPU" in warnings[0]

    def test_jobs_within_cpu_count_stays_quiet(self, tmp_path, capsys):
        system = self._deadlock_system(tmp_path)
        main(
            [
                "search",
                str(system),
                "--strategy",
                "parallel",
                "--jobs",
                "1",
                "--max-depth",
                "20",
            ]
        )
        assert "warning:" not in capsys.readouterr().err
