"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main

OPEN_RC = """
extern proc env();

proc main() {
    var x;
    x = env();
    if (x % 2 == 0) { send(out, 'even'); } else { send(out, 'odd'); }
}
"""

DEADLOCK_RC = """
proc grab(first, second) {
    sem_p(first);
    sem_p(second);
    sem_v(second);
    sem_v(first);
}
"""


@pytest.fixture()
def open_file(tmp_path):
    path = tmp_path / "open.rc"
    path.write_text(OPEN_RC)
    return path


class TestClose:
    def test_close_to_stdout(self, open_file, capsys):
        assert main(["close", str(open_file)]) == 0
        out = capsys.readouterr().out
        assert "VS_toss(1)" in out
        assert "proc main()" in out

    def test_close_to_file(self, open_file, tmp_path, capsys):
        output = tmp_path / "closed.rc"
        assert main(["close", str(open_file), "-o", str(output)]) == 0
        assert "VS_toss" in output.read_text()

    def test_closed_output_reparses(self, open_file, tmp_path):
        from repro.lang.parser import parse_program

        output = tmp_path / "closed.rc"
        main(["close", str(open_file), "-o", str(output)])
        parse_program(output.read_text())

    def test_stats_flag(self, open_file, capsys):
        main(["close", str(open_file), "--stats"])
        err = capsys.readouterr().err
        assert "closed 1 procedure" in err

    def test_env_param_flag(self, tmp_path, capsys):
        path = tmp_path / "p.rc"
        path.write_text("proc main(x) { if (x > 0) { send(out, 1); } }")
        assert main(["close", str(path), "--env-param", "main:x"]) == 0
        out = capsys.readouterr().out
        assert "proc main()" in out  # parameter removed

    def test_bad_env_param_syntax(self, open_file):
        with pytest.raises(SystemExit):
            main(["close", str(open_file), "--env-param", "nonsense"])

    def test_missing_file(self, tmp_path, capsys):
        assert main(["close", str(tmp_path / "nope.rc")]) == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.rc"
        path.write_text("proc main( {")
        assert main(["close", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_c_input(self, tmp_path, capsys):
        pytest.importorskip("pycparser")
        path = tmp_path / "open.c"
        path.write_text(
            "int env();\nvoid main() { int x = env(); if (x) { send(out, 1); } }"
        )
        assert main(["close", str(path)]) == 0
        assert "VS_toss" in capsys.readouterr().out


class TestAnalyzeAndGraph:
    def test_analyze_output(self, open_file, capsys):
        assert main(["analyze", str(open_file)]) == 0
        out = capsys.readouterr().out
        assert "proc main" in out
        assert "N_I" in out

    def test_graph_stdout(self, open_file, capsys):
        assert main(["graph", str(open_file)]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_graph_closed_to_dir(self, open_file, tmp_path, capsys):
        out_dir = tmp_path / "dots"
        assert (
            main(["graph", str(open_file), "--closed", "--out-dir", str(out_dir)]) == 0
        )
        assert (out_dir / "main.dot").exists()

    def test_graph_unknown_proc(self, open_file):
        with pytest.raises(SystemExit):
            main(["graph", str(open_file), "--proc", "nope"])


class TestExplore:
    def _write_system(self, tmp_path, program_text, description):
        program = tmp_path / "prog.rc"
        program.write_text(program_text)
        description = dict(description, program="prog.rc")
        system = tmp_path / "system.json"
        system.write_text(json.dumps(description))
        return system

    def test_explore_clean_system(self, tmp_path, capsys):
        system = self._write_system(
            tmp_path,
            OPEN_RC,
            {
                "close": {},
                "objects": [{"kind": "sink", "name": "out"}],
                "processes": [{"name": "m", "proc": "main", "args": []}],
            },
        )
        assert main(["explore", str(system)]) == 0
        assert "paths=2" in capsys.readouterr().out

    def test_explore_finds_deadlock_exit_code(self, tmp_path, capsys):
        system = self._write_system(
            tmp_path,
            DEADLOCK_RC,
            {
                "objects": [
                    {"kind": "semaphore", "name": "s1", "initial": 1},
                    {"kind": "semaphore", "name": "s2", "initial": 1},
                ],
                "processes": [
                    {
                        "name": "a",
                        "proc": "grab",
                        "args": [{"object": "s1"}, {"object": "s2"}],
                    },
                    {
                        "name": "b",
                        "proc": "grab",
                        "args": [{"object": "s2"}, {"object": "s1"}],
                    },
                ],
            },
        )
        assert main(["explore", str(system), "--max-depth", "20"]) == 1
        out = capsys.readouterr().out
        assert "deadlock" in out

    def test_walk_command(self, tmp_path, capsys):
        system = self._write_system(
            tmp_path,
            OPEN_RC,
            {
                "close": {},
                "objects": [{"kind": "sink", "name": "out"}],
                "processes": [{"name": "m", "proc": "main", "args": []}],
            },
        )
        assert main(["walk", str(system), "--walks", "5"]) == 0
        assert "paths=5" in capsys.readouterr().out

    def test_bad_json_reports_schema(self, tmp_path):
        system = tmp_path / "system.json"
        system.write_text("{not json")
        with pytest.raises(SystemExit) as err:
            main(["explore", str(system)])
        assert "schema" in str(err.value)

    def test_unknown_object_reference(self, tmp_path):
        system = self._write_system(
            tmp_path,
            DEADLOCK_RC,
            {
                "objects": [],
                "processes": [
                    {"name": "a", "proc": "grab", "args": [{"object": "ghost"}, 1]}
                ],
            },
        )
        with pytest.raises(SystemExit):
            main(["explore", str(system)])


class TestMisc:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(["--version"])
        assert err.value.code == 0

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
