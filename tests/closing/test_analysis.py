"""Tests for Steps 2–3 (V_I computation, marking) and the
interprocedural environment-taint fixpoint — including the precision
examples discussed in Section 5 of the paper."""

import pytest

from repro.cfg import NodeKind, build_cfgs
from repro.closing import ClosingSpec, analyze_for_closing
from repro.closing.errors import ClosingError
from repro.lang.parser import parse_program


def analyze(source, spec=None, **kwargs):
    cfgs = build_cfgs(parse_program(source))
    if spec is None and kwargs:
        spec = ClosingSpec.make(**kwargs)
    return analyze_for_closing(cfgs, spec)


def node_by_desc(pa, fragment):
    for node in pa.cfg:
        if fragment in node.describe():
            return node
    raise AssertionError(f"no node matching {fragment!r}")


class TestPaperSection5Examples:
    def test_direct_dependence_chain(self):
        """First Section 5 example: a, b, c all functionally dependent."""
        analysis = analyze(
            "proc p(x) { var a = x % 2; var b = a + 1; var c = b; }",
            env_params={"p": ["x"]},
        )
        pa = analysis.procs["p"]
        for fragment in ("a = x % 2", "b = a + 1", "c = b"):
            assert node_by_desc(pa, fragment).id in pa.n_i, fragment

    def test_control_dependence_does_not_taint_data(self):
        """Second Section 5 example: a, b, c are NOT functionally
        dependent — only the conditional consults the environment."""
        analysis = analyze(
            """
            proc p(x) {
                var a = 0;
                var b;
                if (x > 0) { b = a - 1; } else { b = a + 1; }
                var c = b;
            }
            """,
            env_params={"p": ["x"]},
        )
        pa = analysis.procs["p"]
        cond = node_by_desc(pa, "cond x > 0")
        assert cond.id in pa.n_i
        assert cond.id not in pa.marked
        for fragment in ("a = 0", "b = a - 1", "b = a + 1", "c = b"):
            node = node_by_desc(pa, fragment)
            assert node.id not in pa.n_i, fragment
            assert node.id in pa.marked, fragment

    def test_defuse_composition_imprecision(self):
        """Third Section 5 example: `a=x+1; b=a-x` conservatively reports
        b as dependent on x although the subtraction cancels — Lemma 1
        covers this imprecision."""
        analysis = analyze(
            "proc p(x) { var a = x + 1; var b = a - x; var c = b; }",
            env_params={"p": ["x"]},
        )
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "b = a - x").id in pa.n_i
        assert node_by_desc(pa, "c = b").id in pa.n_i  # monovariant closure


class TestStep2ViComputation:
    def test_vi_empty_without_env_inputs(self):
        analysis = analyze("proc p() { var a = 1; var b = a + 1; }")
        pa = analysis.procs["p"]
        assert pa.n_i == frozenset()
        assert all(not vi for vi in pa.vi.values())

    def test_vi_contains_exact_variables(self):
        analysis = analyze(
            "proc p(x) { var a = x + 1; var b = 0; var c = a + b; }",
            env_params={"p": ["x"]},
        )
        pa = analysis.procs["p"]
        node = node_by_desc(pa, "c = a + b")
        assert pa.vi_of(node.id) == {"a"}

    def test_env_call_result_is_env_defined(self):
        analysis = analyze(
            "extern proc env(); proc p() { var v; v = env(); var w = v + 1; }"
        )
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "w = v + 1").id in pa.n_i

    def test_untainted_siblings_unaffected(self):
        analysis = analyze(
            """
            extern proc env();
            proc p() {
                var v;
                v = env();
                var pure = 10;
                var derived = pure * 2;
                var dirty = v + pure;
            }
            """
        )
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "derived = pure * 2").id not in pa.n_i
        assert node_by_desc(pa, "dirty = v + pure").id in pa.n_i

    def test_strong_redefinition_clears_taint(self):
        analysis = analyze(
            """
            extern proc env();
            proc p() {
                var v;
                v = env();
                v = 5;
                var w = v;
            }
            """
        )
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "w = v").id not in pa.n_i


class TestStep3Marking:
    def test_start_and_termination_always_marked(self):
        analysis = analyze("proc p(x) { return x; }", env_params={"p": ["x"]})
        pa = analysis.procs["p"]
        assert pa.cfg.start_id in pa.marked
        for node in pa.cfg.nodes_of_kind(NodeKind.RETURN, NodeKind.EXIT):
            assert node.id in pa.marked

    def test_system_calls_marked_even_when_tainted(self):
        analysis = analyze(
            """
            extern proc env();
            proc helper(v) { }
            proc p() { var v; v = env(); helper(v); send(c, v); }
            """
        )
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "helper").id in pa.marked
        assert node_by_desc(pa, "send").id in pa.marked

    def test_environment_calls_unmarked(self):
        analysis = analyze("extern proc env(); proc p() { var v; v = env(); }")
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "env()").id not in pa.marked

    def test_tainted_assign_and_cond_unmarked(self):
        analysis = analyze(
            "proc p(x) { var y = x % 2; if (y == 0) { send(c, 1); } }",
            env_params={"p": ["x"]},
        )
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "y = x % 2").id not in pa.marked
        assert node_by_desc(pa, "cond y == 0").id not in pa.marked


class TestInterproceduralFixpoint:
    def test_tainted_argument_taints_callee_param(self):
        analysis = analyze(
            """
            extern proc env();
            proc callee(v) { var w = v + 1; }
            proc p() { var x; x = env(); callee(x); }
            """
        )
        assert "v" in analysis.env_params["callee"]
        pa = analysis.procs["callee"]
        assert node_by_desc(pa, "w = v + 1").id in pa.n_i

    def test_untainted_argument_does_not_taint(self):
        analysis = analyze(
            """
            proc callee(v) { var w = v + 1; }
            proc p() { callee(3); }
            """
        )
        assert analysis.env_params["callee"] == frozenset()

    def test_single_tainted_call_site_suffices(self):
        # One clean call site and one tainted one: parameter still removed
        # (the paper's note on Step 5).
        analysis = analyze(
            """
            extern proc env();
            proc callee(v) { var w = v + 1; }
            proc p() { callee(3); var x; x = env(); callee(x); }
            """
        )
        assert "v" in analysis.env_params["callee"]

    def test_tainted_return_value_propagates(self):
        analysis = analyze(
            """
            extern proc env();
            proc source() { var x; x = env(); return x; }
            proc p() { var v; v = source(); var w = v * 2; }
            """
        )
        assert "source" in analysis.env_returns
        pa = analysis.procs["p"]
        assert node_by_desc(pa, "w = v * 2").id in pa.n_i

    def test_taint_through_transitive_calls(self):
        analysis = analyze(
            """
            extern proc env();
            proc sink(v) { var w = v; }
            proc middle(v) { sink(v); }
            proc p() { var x; x = env(); middle(x); }
            """
        )
        assert "v" in analysis.env_params["middle"]
        assert "v" in analysis.env_params["sink"]

    def test_pointer_arg_to_tainted_write_escapes(self):
        analysis = analyze(
            """
            extern proc env();
            proc fill(p) { var x; x = env(); *p = x; }
            proc main() { var slot = 0; fill(&slot); var y = slot + 1; }
            """
        )
        assert "slot" in analysis.escaped_env_vars["main"]
        pa = analysis.procs["main"]
        assert node_by_desc(pa, "y = slot + 1").id in pa.n_i


class TestObjectTaint:
    def test_send_of_tainted_value_taints_channel(self):
        analysis = analyze(
            """
            extern proc env();
            proc a() { var x; x = env(); send(box, x); }
            proc b() { var v; v = recv(box); var w = v + 1; }
            """
        )
        assert "box" in analysis.tainted_objects
        pa = analysis.procs["b"]
        assert node_by_desc(pa, "w = v + 1").id in pa.n_i

    def test_clean_channel_not_tainted(self):
        analysis = analyze(
            """
            proc a() { send(box, 1); }
            proc b() { var v; v = recv(box); var w = v + 1; }
            """
        )
        assert "box" not in analysis.tainted_objects
        pa = analysis.procs["b"]
        assert node_by_desc(pa, "w = v + 1").id not in pa.n_i

    def test_shared_var_taint(self):
        analysis = analyze(
            """
            extern proc env();
            proc a() { var x; x = env(); write(sv, x); }
            proc b() { var v; v = read(sv); var w = v; }
            """
        )
        assert "sv" in analysis.tainted_objects
        assert node_by_desc(analysis.procs["b"], "w = v").id in analysis.procs["b"].n_i

    def test_env_channel_recv_removed_and_tainted(self):
        analysis = analyze(
            "proc p() { var v; v = recv(inbox); var w = v; }",
            env_channels=["inbox"],
        )
        pa = analysis.procs["p"]
        recv = node_by_desc(pa, "recv")
        assert recv.id not in pa.marked  # environment operation, removed
        assert node_by_desc(pa, "w = v").id in pa.n_i

    def test_send_to_env_channel_rejected(self):
        with pytest.raises(ClosingError):
            analyze("proc p() { send(inbox, 1); }", env_channels=["inbox"])

    def test_unknown_object_taints_all_when_any_tainted(self):
        analysis = analyze(
            """
            extern proc env();
            proc a(ch) { var x; x = env(); send(ch, x); }
            proc b() { var v; v = recv(other); var w = v; }
            """
        )
        assert analysis.all_objects_tainted
        pa = analysis.procs["b"]
        assert node_by_desc(pa, "w = v").id in pa.n_i

    def test_object_binding_restores_precision(self):
        analysis = analyze(
            """
            extern proc env();
            proc a(ch) { var x; x = env(); send(ch, x); }
            proc b() { var v; v = recv(other); var w = v; }
            """,
            object_bindings={("a", "ch"): ["mine"]},
        )
        assert not analysis.all_objects_tainted
        assert analysis.tainted_objects == {"mine"}
        pa = analysis.procs["b"]
        assert node_by_desc(pa, "w = v").id not in pa.n_i


class TestFixpointBehavior:
    def test_rounds_reported(self):
        analysis = analyze("proc p() { var a = 1; }")
        assert analysis.rounds >= 1

    def test_mutual_recursion_converges(self):
        analysis = analyze(
            """
            extern proc env();
            proc even(n) { if (n == 0) { return 1; } return odd(n - 1); }
            proc odd(n) { if (n == 0) { return 0; } return even(n - 1); }
            proc p() { var x; x = env(); var r; r = even(x); }
            """
        )
        assert "n" in analysis.env_params["even"]
        assert "n" in analysis.env_params["odd"]
        assert "even" in analysis.env_returns
