"""Tests for ClosingSpec construction and the close_program driver API."""

import pytest

from repro import close_program
from repro.closing import ClosingSpec, EMPTY_SPEC


class TestSpecConstruction:
    def test_make_normalizes_collections(self):
        spec = ClosingSpec.make(
            env_params={"p": ["x", "y"]},
            env_channels=["a"],
            env_shared=["s"],
            object_bindings={("p", "ch"): ["c1", "c2"]},
        )
        assert spec.params_of("p") == {"x", "y"}
        assert spec.env_channels == {"a"}
        assert spec.env_objects == {"a", "s"}
        assert spec.object_bindings[("p", "ch")] == {"c1", "c2"}

    def test_params_of_unknown_proc_empty(self):
        assert EMPTY_SPEC.params_of("nope") == frozenset()

    def test_empty_spec_is_reusable(self):
        assert EMPTY_SPEC.env_objects == frozenset()


class TestDriverApi:
    SOURCE = "proc main(x) { if (x > 0) { send(out, 1); } }"

    def test_keyword_arguments(self):
        closed = close_program(self.SOURCE, env_params={"main": ["x"]})
        assert closed.cfgs["main"].params == ()

    def test_explicit_spec(self):
        spec = ClosingSpec.make(env_params={"main": ["x"]})
        closed = close_program(self.SOURCE, spec)
        assert closed.cfgs["main"].params == ()

    def test_spec_and_kwargs_conflict(self):
        with pytest.raises(ValueError):
            close_program(self.SOURCE, EMPTY_SPEC, env_params={"main": ["x"]})

    def test_accepts_parsed_program(self):
        from repro.lang.parser import parse_program

        closed = close_program(parse_program(self.SOURCE), env_params={"main": ["x"]})
        assert "main" in closed.cfgs

    def test_accepts_cfgs(self):
        from repro.cfg import build_cfgs
        from repro.lang.parser import parse_program

        cfgs = build_cfgs(parse_program(self.SOURCE))
        closed = close_program(cfgs, env_params={"main": ["x"]})
        assert "main" in closed.cfgs

    def test_summary_mentions_removed_params(self):
        closed = close_program(self.SOURCE, env_params={"main": ["x"]})
        assert "params removed: x" in closed.summary()

    def test_elapsed_time_recorded(self):
        closed = close_program(self.SOURCE)
        assert closed.elapsed_seconds >= 0

    def test_kept_params_query(self):
        closed = close_program(
            "proc main(a, b) { send(out, a); }", env_params={"main": ["b"]}
        )
        assert closed.kept_params("main") == ("a",)
