"""Tests for exporting closed CFGs back to RC source (dispatch-loop form)."""

import pytest

from tests.helpers import single_process_behaviors

from repro import close_program, parse_program
from repro.closing.codegen import cfgs_to_source
from repro.closing.generators import generate_program

FIG2 = """
extern proc env();
proc main() {
    var x;
    x = env();
    var y = x % 2;
    var cnt = 0;
    while (cnt < 3) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""


class TestSourceExport:
    def test_output_parses(self):
        closed = close_program(FIG2)
        program = parse_program(closed.to_source())
        assert "main" in program.procs

    def test_dispatch_loop_shape(self):
        closed = close_program(FIG2)
        text = closed.to_source()
        assert "while (true)" in text
        assert "switch (_pc)" in text
        assert "VS_toss(1)" in text

    def test_kept_params_in_signature(self):
        closed = close_program(
            "extern proc env(); proc main(keep) { var x; x = env(); send(out, keep); }"
        )
        text = closed.to_source()
        assert "proc main(keep)" in text

    def test_behavioural_equivalence_cfg_vs_source(self):
        """The exported source must exhibit exactly the behaviours of the
        CFG it was generated from."""
        closed = close_program(FIG2)
        direct = single_process_behaviors(closed.cfgs, "main")
        reparsed = single_process_behaviors(closed.to_source(), "main")
        assert direct == reparsed

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_generated_program_roundtrip(self, seed):
        closed = close_program(generate_program(seed))
        direct = single_process_behaviors(closed.cfgs, "main", max_depth=80)
        reparsed = single_process_behaviors(closed.to_source(), "main", max_depth=80)
        assert direct == reparsed

    def test_switch_guards_exported(self):
        source = """
        proc main(x) {
            switch (x) {
            case 1: send(out, 'one');
            case 'tag': send(out, 'str');
            default: send(out, 'other');
            }
        }
        """
        closed = close_program(source)
        text = closed.to_source()
        assert "case 1:" in text
        assert "case 'tag':" in text
        reparsed = parse_program(text)
        assert "main" in reparsed.procs

    def test_multiple_procs_sorted(self):
        closed = close_program(
            "proc beta() { } proc alpha() { beta(); }"
        )
        text = cfgs_to_source(closed.cfgs)
        assert text.index("proc alpha") < text.index("proc beta")

    def test_behaviours_with_channels(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            send(box, 1);
            var v;
            v = recv(box);
            if (x % 2 == 0) { send(out, v); } else { send(out, v + 1); }
        }
        """
        closed = close_program(source)
        objects = {"box": ("channel", 1)}
        direct = single_process_behaviors(closed.cfgs, "main", objects=objects)
        reparsed = single_process_behaviors(
            closed.to_source(), "main", objects=objects
        )
        assert direct == reparsed == {(1,), (2,)}
