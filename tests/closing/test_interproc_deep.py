"""Deeper interprocedural taint scenarios: diamonds, cross-process
chains, structured data, combined pointer/channel/return flows."""


from tests.helpers import behavior_inclusion, single_process_behaviors

from repro import System, close_naively, close_program
from repro.cfg import NodeKind, build_cfgs
from repro.closing import NaiveDomains, analyze_for_closing
from repro.lang.parser import parse_program


def analyze(source, **kwargs):
    from repro.closing import ClosingSpec

    cfgs = build_cfgs(parse_program(source))
    spec = ClosingSpec.make(**kwargs) if kwargs else None
    return analyze_for_closing(cfgs, spec)


class TestDiamondCallGraphs:
    SOURCE = """
    extern proc env();
    proc leaf(v) { return v + 1; }
    proc left() { var x; x = env(); return leaf(x); }
    proc right() { return leaf(10); }
    proc main() {
        var a;
        a = left();
        var b;
        b = right();
        var c = b * 2;
        if (a > 0) { send(out, c); } else { send(out, 0 - c); }
    }
    """

    def test_shared_callee_tainted_by_one_caller(self):
        analysis = analyze(self.SOURCE)
        # leaf's parameter is tainted via left, so (context-insensitively)
        # leaf's return taints right's result too.
        assert "v" in analysis.env_params["leaf"]
        assert "leaf" in analysis.env_returns
        assert "right" in analysis.env_returns

    def test_soundness_despite_merging(self):
        closed = close_program(self.SOURCE)
        naive = close_naively(self.SOURCE, NaiveDomains(default=[0, 3]))
        open_traces = single_process_behaviors(naive.cfgs, "main")
        closed_traces = single_process_behaviors(closed.cfgs, "main")
        assert behavior_inclusion(open_traces, closed_traces)


class TestCrossProcessChains:
    def test_three_hop_channel_chain(self):
        source = """
        extern proc env();
        proc stage1() { var x; x = env(); send(h1, x % 8); }
        proc stage2() { var v; v = recv(h1); send(h2, v + 1); }
        proc stage3() {
            var v;
            v = recv(h2);
            if (v > 4) { send(out, 'hi'); } else { send(out, 'lo'); }
        }
        """
        analysis = analyze(source)
        assert {"h1", "h2"} <= analysis.tainted_objects
        closed = close_program(source)
        system = System(closed.cfgs)
        system.add_channel("h1", capacity=1)
        system.add_channel("h2", capacity=1)
        system.add_env_sink("out")
        system.add_process("s1", "stage1", [])
        system.add_process("s2", "stage2", [])
        system.add_process("s3", "stage3", [])
        from repro.verisoft import collect_output_traces

        traces = collect_output_traces(system, "out", max_depth=30)
        assert traces == {("hi",), ("lo",)}

    def test_taint_does_not_leak_backward(self):
        source = """
        extern proc env();
        proc producer() { send(clean, 5); var x; x = env(); send(dirty, x); }
        proc consumer() {
            var a;
            a = recv(clean);
            var b = a * 2;
            send(out, b);
            var c;
            c = recv(dirty);
            var d = c * 2;
        }
        """
        analysis = analyze(source)
        assert "dirty" in analysis.tainted_objects
        assert "clean" not in analysis.tainted_objects
        pa = analysis.procs["consumer"]
        descriptions = {
            node.id: node.describe() for node in pa.cfg
        }
        b_node = next(i for i, d in descriptions.items() if d == "b = a * 2")
        d_node = next(i for i, d in descriptions.items() if d == "d = c * 2")
        assert b_node not in pa.n_i
        assert d_node in pa.n_i


class TestPointerChains:
    def test_pointer_into_record_field(self):
        source = """
        extern proc env();
        proc fill(r) { r.level = env(); }
        proc main() {
            var box;
            box = record();
            box.level = 0;
            fill(box);
            var v = box.level;
            if (v > 0) { send(out, 'set'); }
        }
        """
        # Records are passed by value in RC, so fill mutates a copy: the
        # caller's box is NOT tainted and the guard is preserved.
        analysis = analyze(source)
        pa = analysis.procs["main"]
        guard = next(n for n in pa.cfg if "cond" in n.describe())
        assert guard.id not in pa.n_i

    def test_pointer_to_record_taints_caller(self):
        source = """
        extern proc env();
        proc fill(p) { *p = env(); }
        proc main() {
            var slot = 0;
            fill(&slot);
            if (slot > 0) { send(out, 'set'); } else { send(out, 'unset'); }
        }
        """
        closed = close_program(source)
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("set",), ("unset",)}

    def test_double_indirection(self):
        source = """
        extern proc env();
        proc fill(pp) { var inner; inner = *pp; *inner = env(); }
        proc main() {
            var slot = 0;
            var p = &slot;
            fill(&p);
            var v = slot;
            if (v > 0) { send(out, 'hit'); } else { send(out, 'miss'); }
        }
        """
        closed = close_program(source)
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("hit",), ("miss",)}


class TestSemaphoresStayClean:
    def test_semaphore_ops_never_tainted(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            sem_p(lock);
            if (x > 0) { send(out, 'a'); } else { send(out, 'b'); }
            sem_v(lock);
        }
        """
        analysis = analyze(source)
        assert "lock" not in analysis.tainted_objects
        closed = close_program(source)
        cfg = closed.cfgs["main"]
        ops = [n.callee for n in cfg.nodes_of_kind(NodeKind.CALL)]
        assert ops.count("sem_p") == 1 and ops.count("sem_v") == 1


class TestExternOutputs:
    def test_extern_call_with_system_args_removed(self):
        # Calls INTO the environment are environment operations; their
        # arguments (outputs to the env) vanish with them — outputs that
        # must stay observable belong on env sinks.
        source = """
        extern proc report(value);
        proc main() {
            var x = 7;
            report(x);
            send(out, x);
        }
        """
        closed = close_program(source)
        cfg = closed.cfgs["main"]
        assert not any(n.callee == "report" for n in cfg.nodes_of_kind(NodeKind.CALL))
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {(7,)}
