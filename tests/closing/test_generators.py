"""Tests for the random program generator itself."""

import pytest

from repro.cfg import build_cfgs
from repro.closing.generators import (
    GeneratorConfig,
    generate_program,
    generate_sized_program,
)
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.runtime.process import ProcessStatus


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", range(25))
    def test_always_parses_and_normalizes(self, seed):
        program = parse_program(generate_program(seed))
        normalize_program(program)

    @pytest.mark.parametrize("seed", range(25))
    def test_cfgs_build_and_validate(self, seed):
        cfgs = build_cfgs(parse_program(generate_program(seed)))
        for cfg in cfgs.values():
            cfg.validate()

    def test_deterministic_per_seed(self):
        assert generate_program(7) == generate_program(7)

    def test_different_seeds_differ(self):
        assert generate_program(1) != generate_program(2)

    def test_contains_env_inputs(self):
        source = generate_program(0)
        assert "extern proc env_input_0" in source

    @pytest.mark.parametrize("seed", range(10))
    def test_generated_programs_terminate(self, seed):
        """Loops are counter-bounded by construction, so a run with fixed
        environment answers terminates."""
        from tests.helpers import run_single

        # Replace env calls with constants by running the naive closing.
        from repro.closing import close_naively
        from repro.closing.naive import NaiveDomains

        naive = close_naively(generate_program(seed), NaiveDomains(default=[3]))
        run = run_single(naive.cfgs, "main", max_steps=50_000)
        assert run.processes[0].status is ProcessStatus.TERMINATED

    def test_config_respected(self):
        config = GeneratorConfig(n_env_inputs=5)
        source = generate_program(0, config)
        assert "env_input_4" in source


class TestSizedPrograms:
    @pytest.mark.parametrize("n", [10, 100, 500])
    def test_parses_at_all_sizes(self, n):
        cfgs = build_cfgs(parse_program(generate_sized_program(n)))
        cfgs["main"].validate()

    def test_size_scales_with_parameter(self):
        small = build_cfgs(parse_program(generate_sized_program(50)))["main"]
        large = build_cfgs(parse_program(generate_sized_program(500)))["main"]
        assert large.node_count() > 5 * small.node_count()

    def test_closable(self):
        from repro.closing import close_program

        closed = close_program(generate_sized_program(200))
        assert closed.nodes_eliminated > 0
        closed.cfgs["main"].validate()
