"""Tests for redundant-toss elimination (the Section 5 post-pass)."""

import pytest

from tests.helpers import dfs_search, single_process_behaviors

from repro import System, close_program
from repro.cfg import ALWAYS, ControlFlowGraph, NodeKind, TossGuard, build_cfgs
from repro.closing.generators import generate_program
from repro.closing.minimize import bisimulation_classes, eliminate_redundant_toss
from repro.lang import ast
from repro.lang.parser import parse_program


def toss_cfg(n_branches, same_target=True):
    """START -> TOSS -> n identical (or distinct) sends -> RETURN."""
    cfg = ControlFlowGraph(proc_name="p")
    start = cfg.new_node(NodeKind.START)
    toss = cfg.new_node(NodeKind.TOSS, bound=n_branches - 1)
    ret = cfg.new_node(NodeKind.RETURN)
    cfg.add_arc(start.id, toss.id, ALWAYS)
    for i in range(n_branches):
        tag = "same" if same_target else f"tag{i}"
        send = cfg.new_node(
            NodeKind.CALL,
            callee="send",
            args=(ast.StrLit("out"), ast.StrLit(tag)),
        )
        cfg.add_arc(toss.id, send.id, TossGuard(i))
        cfg.add_arc(send.id, ret.id, ALWAYS)
    cfg.validate()
    return cfg


class TestBisimulation:
    def test_identical_straightline_nodes_equivalent(self):
        cfg = toss_cfg(3, same_target=True)
        classes = bisimulation_classes(cfg)
        sends = [n.id for n in cfg.nodes_of_kind(NodeKind.CALL)]
        assert len({classes[s] for s in sends}) == 1

    def test_distinct_nodes_not_equivalent(self):
        cfg = toss_cfg(3, same_target=False)
        classes = bisimulation_classes(cfg)
        sends = [n.id for n in cfg.nodes_of_kind(NodeKind.CALL)]
        assert len({classes[s] for s in sends}) == 3

    def test_successor_difference_splits_classes(self):
        # Two identical assigns, but one leads to a send and the other to
        # a return: not bisimilar.
        source = """
        proc main(c) {
            var x;
            if (c == 1) { x = 5; send(out, 1); } else { x = 5; }
        }
        """
        cfg = build_cfgs(parse_program(source))["main"]
        classes = bisimulation_classes(cfg)
        assigns = [
            n.id for n in cfg.nodes_of_kind(NodeKind.ASSIGN) if "x = 5" in n.describe()
        ]
        assert len(assigns) == 2
        assert classes[assigns[0]] != classes[assigns[1]]


class TestTossElimination:
    def test_fully_redundant_toss_removed(self):
        cfg = toss_cfg(4, same_target=True)
        pruned, stats = eliminate_redundant_toss(cfg)
        assert stats.toss_removed == 1
        assert not pruned.nodes_of_kind(NodeKind.TOSS)

    def test_distinct_branches_untouched(self):
        cfg = toss_cfg(3, same_target=False)
        pruned, stats = eliminate_redundant_toss(cfg)
        assert stats.toss_removed == 0 and stats.toss_narrowed == 0

    def test_partially_redundant_toss_narrowed(self):
        # 4 branches, 2 distinct behaviours.
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        toss = cfg.new_node(NodeKind.TOSS, bound=3)
        ret = cfg.new_node(NodeKind.RETURN)
        cfg.add_arc(start.id, toss.id, ALWAYS)
        for i in range(4):
            tag = "a" if i % 2 == 0 else "b"
            send = cfg.new_node(
                NodeKind.CALL,
                callee="send",
                args=(ast.StrLit("out"), ast.StrLit(tag)),
            )
            cfg.add_arc(toss.id, send.id, TossGuard(i))
            cfg.add_arc(send.id, ret.id, ALWAYS)
        cfg.validate()
        pruned, stats = eliminate_redundant_toss(cfg)
        assert stats.toss_narrowed == 1
        assert stats.branches_removed == 2
        remaining = pruned.nodes_of_kind(NodeKind.TOSS)[0]
        assert remaining.bound == 1
        pruned.validate()

    def test_behaviour_set_preserved(self):
        cfg = toss_cfg(4, same_target=True)
        pruned, _ = eliminate_redundant_toss(cfg)
        before = single_process_behaviors({"p": cfg}, "p")
        after = single_process_behaviors({"p": pruned}, "p")
        assert before == after == {("same",)}

    def test_path_count_reduced(self):
        cfg = toss_cfg(4, same_target=True)
        pruned, _ = eliminate_redundant_toss(cfg)

        def paths(graph):
            system = System({"p": graph})
            system.add_env_sink("out")
            system.add_process("P", "p", [])
            return dfs_search(system, max_depth=10, por=False).paths_explored

        assert paths(cfg) == 4
        assert paths(pruned) == 1


class TestOnClosedPrograms:
    def test_redundant_branch_from_convergent_taint(self):
        # Both tainted branches assign different tainted data and then do
        # the SAME visible thing: the closing keeps a 2-way toss (the
        # conditional had 2 successors), but the branches are bisimilar,
        # so minimization removes the choice.
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            if (x > 0) {
                send(out, 'same');
            } else {
                send(out, 'same');
            }
            send(out, 'done');
        }
        """
        closed = close_program(source)
        assert closed.cfgs["main"].nodes_of_kind(NodeKind.TOSS)
        optimized = closed.optimize()
        assert not optimized.cfgs["main"].nodes_of_kind(NodeKind.TOSS)
        before = single_process_behaviors(closed.cfgs, "main")
        after = single_process_behaviors(optimized.cfgs, "main")
        assert before == after

    @pytest.mark.parametrize("seed", range(8))
    def test_behaviours_preserved_on_generated_programs(self, seed):
        closed = close_program(generate_program(seed))
        minimized, _ = eliminate_redundant_toss(closed.cfgs["main"])
        cfgs = dict(closed.cfgs)
        cfgs["main"] = minimized
        before = single_process_behaviors(closed.cfgs, "main", max_depth=80)
        after = single_process_behaviors(cfgs, "main", max_depth=80)
        assert before == after
