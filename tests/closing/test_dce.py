"""Tests for the dead-store-elimination pass on closed programs."""

import pytest

from tests.helpers import single_process_behaviors

from repro import close_program
from repro.cfg import NodeKind, build_cfgs
from repro.closing.dce import eliminate_dead_stores
from repro.closing.generators import generate_program
from repro.lang.parser import parse_program


def cfg_of(source, proc="main"):
    return build_cfgs(parse_program(source))[proc]


class TestBasicElimination:
    def test_unused_assignment_removed(self):
        cfg = cfg_of("proc main() { var dead = 42; send(out, 1); }")
        pruned, stats = eliminate_dead_stores(cfg)
        assert stats.removed_assigns == 1
        assert not any("dead" in n.describe() for n in pruned)

    def test_used_assignment_kept(self):
        cfg = cfg_of("proc main() { var live = 42; send(out, live); }")
        pruned, stats = eliminate_dead_stores(cfg)
        assert stats.removed == 0

    def test_chain_of_dead_stores_removed(self):
        cfg = cfg_of(
            "proc main() { var a = 1; var b = a + 1; var c = b + 1; send(out, 9); }"
        )
        pruned, stats = eliminate_dead_stores(cfg)
        # c dead -> b dead -> a dead: the fixpoint gets all three.
        assert stats.removed_assigns == 3

    def test_overwritten_store_removed(self):
        cfg = cfg_of("proc main() { var x = 1; x = 2; send(out, x); }")
        pruned, stats = eliminate_dead_stores(cfg)
        assert stats.removed_assigns == 1
        assert any("x = 2" in n.describe() for n in pruned)

    def test_loop_carried_variable_kept(self):
        cfg = cfg_of(
            "proc main() { var i = 0; while (i < 3) { send(out, i); i = i + 1; } }"
        )
        pruned, stats = eliminate_dead_stores(cfg)
        assert stats.removed == 0

    def test_address_taken_variable_kept(self):
        cfg = cfg_of(
            """
            proc main() {
                var x = 1;
                var p = &x;
                *p = 2;
                send(out, *p);
            }
            """
        )
        pruned, stats = eliminate_dead_stores(cfg)
        assert not any(
            n.kind is NodeKind.ASSIGN and "x = 1" == n.describe()
            for n in pruned
        ) or stats.removed == 0  # x pinned: either kept conservatively

    def test_dead_toss_statement_removed(self):
        cfg = cfg_of("proc main() { var t; t = VS_toss(3); send(out, 'hi'); }")
        pruned, stats = eliminate_dead_stores(cfg)
        assert stats.removed_calls == 1
        assert not any(n.callee == "VS_toss" for n in pruned.nodes_of_kind(NodeKind.CALL))

    def test_visible_call_never_removed(self):
        cfg = cfg_of("proc main() { var v; v = recv(ch); send(out, 'done'); }")
        pruned, stats = eliminate_dead_stores(cfg)
        assert any(n.callee == "recv" for n in pruned.nodes_of_kind(NodeKind.CALL))
        assert stats.removed_calls == 0

    def test_user_call_never_removed(self):
        cfg_map = build_cfgs(
            parse_program(
                "proc f() { send(out, 1); return 0; } proc main() { var v; v = f(); }"
            )
        )
        pruned, stats = eliminate_dead_stores(cfg_map["main"])
        assert any(n.callee == "f" for n in pruned.nodes_of_kind(NodeKind.CALL))

    def test_value_feeding_condition_kept(self):
        cfg = cfg_of(
            "proc main() { var x = 1; if (x > 0) { send(out, 'p'); } }"
        )
        pruned, stats = eliminate_dead_stores(cfg)
        assert stats.removed == 0


class TestOnClosedPrograms:
    def test_closing_residue_cleaned(self):
        # After closing, the declaration of x (kept as `x = 0`) feeds
        # nothing: DCE removes it.
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                if (x > 0) { send(out, 'p'); } else { send(out, 'n'); }
            }
            """
        )
        assert any("x = 0" in n.describe() for n in closed.cfgs["main"])
        optimized = closed.optimize()
        assert not any("x = 0" in n.describe() for n in optimized.cfgs["main"])

    @pytest.mark.parametrize("seed", range(8))
    def test_behaviour_preserved_on_generated_programs(self, seed):
        closed = close_program(generate_program(seed))
        optimized = closed.optimize()
        before = single_process_behaviors(closed.cfgs, "main", max_depth=80)
        after = single_process_behaviors(optimized.cfgs, "main", max_depth=80)
        assert before == after

    def test_optimize_stats_recorded(self):
        closed = close_program(
            "extern proc env(); proc main() { var x; x = env(); send(out, 'k'); }",
        )
        optimized = closed.optimize()
        assert "main" in optimized.optimize_stats

    def test_optimize_flag_on_close_program(self):
        closed = close_program(
            "extern proc env(); proc main() { var x; x = env(); send(out, 'k'); }",
            optimize=True,
        )
        assert closed.optimize_stats
        closed.cfgs["main"].validate()
