"""Tests for input-domain partitioning (the Section 7 proposal)."""


from tests.helpers import single_process_behaviors

from repro import close_naively, close_program
from repro.closing import NaiveDomains, close_with_partitioning
from repro.closing.partition import _Atom, representatives

RESOURCE_MANAGER = """
extern proc next_request();

proc main(n) {
    var i = 0;
    while (i < n) {
        var req;
        req = next_request();
        if (req < 10) {
            send(out, 'immediate');
        } else {
            if (req < 1000) {
                send(out, 'queued');
            } else {
                send(out, 'rejected');
            }
        }
        i = i + 1;
    }
}
"""


class TestRepresentatives:
    def evaluate_all(self, atoms, values):
        return {tuple(a.evaluate(v) for a in atoms) for v in values}

    def test_single_threshold(self):
        atoms = [_Atom(None, "<", 10)]
        reps = representatives(atoms, 64)
        assert len(reps) == 2
        assert self.evaluate_all(atoms, reps) == {(True,), (False,)}

    def test_two_thresholds(self):
        atoms = [_Atom(None, "<", 10), _Atom(None, "<", 1000)]
        reps = representatives(atoms, 64)
        # three feasible classes: <10, [10,1000), >=1000
        assert len(reps) == 3

    def test_modulus(self):
        atoms = [_Atom(2, "==", 0)]
        reps = representatives(atoms, 64)
        signatures = self.evaluate_all(atoms, reps)
        assert (True,) in signatures and (False,) in signatures

    def test_modulus_and_threshold_cross_product(self):
        atoms = [_Atom(3, "==", 0), _Atom(None, "<", 100)]
        reps = representatives(atoms, 64)
        assert len(self.evaluate_all(atoms, reps)) == len(reps)
        assert len(reps) == 4  # {mult-of-3, not} x {<100, >=100}

    def test_negative_dividend_c_mod(self):
        # C-style %: -3 % 2 == -1, so 'x % 2 == 1' is false for all
        # negative odd x — the sampler must expose the negative classes.
        atoms = [_Atom(2, "==", 1), _Atom(None, "<", 0)]
        reps = representatives(atoms, 64)
        signatures = self.evaluate_all(atoms, reps)
        assert (False, True) in signatures  # negative odd or even
        assert (True, False) in signatures  # positive odd

    def test_class_budget(self):
        atoms = [_Atom(101, "==", i) for i in range(70)]
        assert representatives(atoms, 64) is None

    def test_exhaustive_against_brute_force(self):
        atoms = [
            _Atom(None, "<", 5),
            _Atom(None, ">=", -3),
            _Atom(4, "==", 1),
            _Atom(6, "!=", 2),
        ]
        reps = representatives(atoms, 256)
        sampled = self.evaluate_all(atoms, reps)
        brute = self.evaluate_all(atoms, range(-60, 61))
        assert brute <= sampled


class TestCloseWithPartitioning:
    def test_resource_manager_partitioned(self):
        closed, report = close_with_partitioning(RESOURCE_MANAGER)
        assert len(report.sites) == 1
        site = report.sites[0]
        assert site.classes == 3
        assert not report.fallbacks

    def test_partitioned_closing_is_exact(self):
        """Where partitioning applies, closed == open behaviours (no
        upper approximation) — the Section 7 goal."""
        closed, _ = close_with_partitioning(RESOURCE_MANAGER)
        partitioned = single_process_behaviors(closed.cfgs, "main", args=(2,))
        # Ground truth: naive closing over a domain that has a value in
        # every range.
        naive = close_naively(
            RESOURCE_MANAGER, NaiveDomains(default=[0, 500, 5000])
        )
        exact = single_process_behaviors(naive.cfgs, "main", args=(2,))
        assert partitioned == exact
        # Plain closing over-approximates in branching (the nested
        # conditionals become independent tosses) but never under-covers.
        plain = close_program(RESOURCE_MANAGER)
        plain_traces = single_process_behaviors(plain.cfgs, "main", args=(2,))
        assert exact <= plain_traces

    def test_unpartitionable_input_falls_back(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            var y = x * 2;
            if (y < 10) { send(out, 'a'); } else { send(out, 'b'); }
        }
        """
        closed, report = close_with_partitioning(source)
        assert not report.sites
        assert report.fallbacks
        # Fallback still closes soundly (the standard erasure).
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("a",), ("b",)}

    def test_mixed_variable_guard_falls_back(self):
        source = """
        extern proc env();
        proc main(limit) {
            var x;
            x = env();
            if (x < limit) { send(out, 'a'); } else { send(out, 'b'); }
        }
        """
        closed, report = close_with_partitioning(source)
        assert report.fallbacks

    def test_unused_input_gets_single_representative(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            send(out, 'done');
        }
        """
        closed, report = close_with_partitioning(source)
        assert report.sites and report.sites[0].classes == 1
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("done",)}

    def test_mixed_sites_partition_and_erase(self):
        source = """
        extern proc ranged();
        extern proc opaque();
        proc main() {
            var a;
            a = ranged();
            if (a < 5) { send(out, 'small'); } else { send(out, 'big'); }
            var b;
            b = opaque();
            var c = b + 1;
            if (c > 0) { send(out, 'pos'); } else { send(out, 'neg'); }
        }
        """
        closed, report = close_with_partitioning(source)
        assert len(report.sites) == 1
        assert len(report.fallbacks) == 1
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {
            ("small", "pos"),
            ("small", "neg"),
            ("big", "pos"),
            ("big", "neg"),
        }

    def test_boolean_combinations_in_guard(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            if (x >= 0 && x < 100) { send(out, 'in'); } else { send(out, 'out'); }
        }
        """
        closed, report = close_with_partitioning(source)
        assert len(report.sites) == 1
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("in",), ("out",)}

    def test_figure2_becomes_exact(self):
        """Partitioning also repairs Figure 2: x % 2 has two classes, the
        toss happens once at the input site, so the closed program is
        exact instead of a strict upper approximation."""
        fig2 = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            var y = x % 2;
            var cnt = 0;
            while (cnt < 4) {
                if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
                cnt = cnt + 1;
            }
        }
        """
        closed, report = close_with_partitioning(fig2)
        # The derived-assignment chain (y = x % 2, then guards on y) is
        # followed: two classes, closed exactly.
        assert len(report.sites) == 1
        assert report.sites[0].classes == 2
        assert not report.fallbacks
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("even",) * 4, ("odd",) * 4}

    def test_copy_chain_followed(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            var y = x;
            var z = y;
            if (z < 0) { send(out, 'neg'); } else { send(out, 'pos'); }
        }
        """
        closed, report = close_with_partitioning(source)
        assert len(report.sites) == 1
        assert report.sites[0].classes == 2

    def test_composite_modulus_falls_back(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            var y = x % 6;
            if (y % 2 == 0) { send(out, 'a'); } else { send(out, 'b'); }
        }
        """
        closed, report = close_with_partitioning(source)
        assert report.fallbacks  # (x % 6) % 2 is outside the fragment
