"""Closing edge cases: env shared variables, native VS_toss, exits,
records, optimize on the full case study."""

import pytest

from tests.helpers import dfs_search, single_process_behaviors

from repro import close_program
from repro.cfg import NodeKind


class TestEnvSharedVariables:
    def test_read_from_env_shared_removed_and_tainted(self):
        closed = close_program(
            """
            proc main() {
                var v;
                v = read(plant_state);
                if (v > 10) { send(out, 'high'); } else { send(out, 'low'); }
            }
            """,
            env_shared=["plant_state"],
        )
        cfg = closed.cfgs["main"]
        assert not any(
            n.callee == "read" for n in cfg.nodes_of_kind(NodeKind.CALL)
        )
        assert cfg.nodes_of_kind(NodeKind.TOSS)
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("high",), ("low",)}

    def test_write_to_env_shared_rejected(self):
        from repro.closing import ClosingError

        with pytest.raises(ClosingError):
            close_program(
                "proc main() { write(plant_state, 1); }",
                env_shared=["plant_state"],
            )


class TestNativeNondeterminism:
    def test_user_toss_preserved(self):
        # A manually-written stub using VS_toss is system code: kept.
        closed = close_program(
            """
            proc main() {
                var t;
                t = VS_toss(2);
                send(out, t);
            }
            """
        )
        calls = [n.callee for n in closed.cfgs["main"].nodes_of_kind(NodeKind.CALL)]
        assert "VS_toss" in calls
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {(0,), (1,), (2,)}

    def test_user_toss_result_is_not_env_tainted(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var t;
                t = VS_toss(1);
                var keep = t + 1;
                send(out, keep);
            }
            """
        )
        # keep depends on toss, not on the environment: preserved.
        assert any("keep" in n.describe() for n in closed.cfgs["main"])

    def test_closing_already_closed_toss_graph(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            if (x > 0) { send(out, 'a'); } else { send(out, 'b'); }
        }
        """
        once = close_program(source)
        twice = close_program(once.cfgs)
        assert single_process_behaviors(once.cfgs, "main") == (
            single_process_behaviors(twice.cfgs, "main")
        )


class TestExitAndTermination:
    def test_exit_preserved(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                if (x == 0) { exit; }
                send(out, 'alive');
            }
            """
        )
        cfg = closed.cfgs["main"]
        assert cfg.nodes_of_kind(NodeKind.EXIT)
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {(), ("alive",)}

    def test_return_in_branches(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                if (x > 0) { send(out, 'p'); return; }
                send(out, 'rest');
            }
            """
        )
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("p",), ("rest",)}


class TestRecordsAndArrays:
    def test_tainted_record_field_flows(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var r;
                r = record();
                r.level = env();
                var v = r.level;
                if (v > 3) { send(out, 'hi'); } else { send(out, 'lo'); }
            }
            """
        )
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("hi",), ("lo",)}

    def test_untainted_record_survives(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var junk;
                junk = env();
                var r;
                r = record();
                r.level = 2;
                send(out, r.level);
            }
            """
        )
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {(2,)}

    def test_tainted_array_contents(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var a[2];
                a[0] = env();
                var v = a[1];
                send(out, 'done');
                if (v > 0) { send(out, 'x'); }
            }
            """
        )
        # a[1] may-aliases the tainted a[0] write (container collapsed):
        # the conditional is conservatively erased; behaviours covered.
        traces = single_process_behaviors(closed.cfgs, "main")
        assert ("done",) in traces
        assert ("done", "x") in traces


class TestOptimizedCaseStudy:
    def test_defects_survive_optimization(self):
        from repro.fiveess import build_app

        app = build_app(n_lines=2)
        closed = app.close().optimize()
        for cfg in closed.cfgs.values():
            cfg.validate()
        system = app.make_system(closed, with_maintenance=False)
        report = dfs_search(
            system,
            max_depth=40,
            por=True,
            max_paths=4000,
            stop_when=lambda r: any(
                app.classify_deadlock(d.blocked) == "seeded-lock-order"
                for d in r.deadlocks
            ),
        )
        classes = {app.classify_deadlock(d.blocked) for d in report.deadlocks}
        assert "seeded-lock-order" in classes
