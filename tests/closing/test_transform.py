"""Tests for Steps 4–5: the CFG rebuild with VS_toss insertion and
parameter/argument removal."""

import pytest

from repro.cfg import NodeKind
from repro.closing import ClosingError, close_program
from repro.lang import ast

FIG2 = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""

FIG3 = """
proc q(x) {
    var cnt = 0;
    while (cnt < 10) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""


def closed_cfg(source, proc, **kwargs):
    closed = close_program(source, **kwargs)
    return closed, closed.cfgs[proc]


class TestFigure2:
    def test_structure(self):
        closed, cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        # y assignment and the y==0 conditional are gone; a single
        # VS_toss(1) conditional replaces the branch.
        descriptions = [node.describe() for node in cfg]
        assert not any("y" in d for d in descriptions)
        toss_nodes = cfg.nodes_of_kind(NodeKind.TOSS)
        assert len(toss_nodes) == 1
        assert toss_nodes[0].bound == 1

    def test_parameter_removed(self):
        closed, cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        assert cfg.params == ()
        assert closed.removed_params == {"p": ("x",)}

    def test_counter_machinery_preserved(self):
        closed, cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        descriptions = [node.describe() for node in cfg]
        assert any("cnt = 0" in d for d in descriptions)
        assert any("cnt = cnt + 1" in d for d in descriptions)
        assert any("cond cnt < 10" in d for d in descriptions)

    def test_sends_preserved(self):
        closed, cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        sends = [n for n in cfg.nodes_of_kind(NodeKind.CALL) if n.callee == "send"]
        assert len(sends) == 2

    def test_toss_guards_cover_branches(self):
        closed, cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        toss = cfg.nodes_of_kind(NodeKind.TOSS)[0]
        guards = sorted(
            arc.guard.value for arc in cfg.successors(toss.id)
        )
        assert guards == [0, 1]

    def test_graph_validates(self):
        closed, cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        cfg.validate()


class TestFigure3:
    def test_p_and_q_close_to_equivalent_graphs(self):
        """The paper: 'Note that G'_p and G'_q are equivalent; although p
        and q are functionally distinct, the algorithm transforms each of
        them to the same closed program.'"""
        _, p_cfg = closed_cfg(FIG2, "p", env_params={"p": ["x"]})
        _, q_cfg = closed_cfg(FIG3, "q", env_params={"q": ["x"]})
        assert _shape(p_cfg) == _shape(q_cfg)

    def test_x_division_eliminated(self):
        _, cfg = closed_cfg(FIG3, "q", env_params={"q": ["x"]})
        assert not any("x" in node.describe() for node in cfg)


def _shape(cfg):
    """A canonical structural fingerprint of a CFG (up to node ids)."""
    index = {node_id: i for i, node_id in enumerate(sorted(cfg.nodes))}
    nodes = tuple(
        (index[nid], cfg.nodes[nid].kind.name, cfg.nodes[nid].describe())
        for nid in sorted(cfg.nodes)
    )
    arcs = tuple(
        sorted(
            (index[a.src], index[a.dst], a.guard.describe()) for a in cfg.arcs
        )
    )
    return nodes, arcs


class TestStep5ArgumentRemoval:
    def test_call_site_argument_dropped(self):
        closed = close_program(
            """
            extern proc env();
            proc callee(keep, drop) { var a = keep; var b = drop + 1; }
            proc main() { var x; x = env(); callee(5, x); }
            """
        )
        assert closed.cfgs["callee"].params == ("keep",)
        call = next(
            n
            for n in closed.cfgs["main"].nodes_of_kind(NodeKind.CALL)
            if n.callee == "callee"
        )
        assert len(call.args) == 1

    def test_builtin_value_arg_erased_to_top(self):
        closed = close_program(
            "extern proc env(); proc main() { var x; x = env(); send(c, x); }"
        )
        send = next(
            n
            for n in closed.cfgs["main"].nodes_of_kind(NodeKind.CALL)
            if n.callee == "send"
        )
        assert isinstance(send.args[1], ast.AbstractLit)

    def test_nonpreserved_assert_subject_erased(self):
        closed = close_program(
            "extern proc env(); proc main() { var x; x = env(); VS_assert(x); }"
        )
        check = next(
            n
            for n in closed.cfgs["main"].nodes_of_kind(NodeKind.CALL)
            if n.callee == "VS_assert"
        )
        assert isinstance(check.args[0], ast.AbstractLit)

    def test_preserved_assert_untouched(self):
        closed = close_program(
            "extern proc env(); proc main() { var x; x = env(); var y = 1; VS_assert(y == 1); }"
        )
        check = next(
            n
            for n in closed.cfgs["main"].nodes_of_kind(NodeKind.CALL)
            if n.callee == "VS_assert"
        )
        assert not isinstance(check.args[0], ast.AbstractLit)

    def test_tainted_return_value_dropped(self):
        closed = close_program(
            """
            extern proc env();
            proc source() { var x; x = env(); return x; }
            proc main() { var v; v = source(); }
            """
        )
        ret = next(
            n
            for n in closed.cfgs["source"].nodes_of_kind(NodeKind.RETURN)
            if True
        )
        assert ret.value is None

    def test_tainted_result_location_dropped(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var a[3];
                var i;
                i = env();
                a[i % 3] = recv(box);
            }
            """
        )
        recv = next(
            n
            for n in closed.cfgs["main"].nodes_of_kind(NodeKind.CALL)
            if n.callee == "recv"
        )
        assert recv.result is None

    def test_operation_on_env_chosen_object_rejected(self):
        # The channel reference itself is environment data.
        with pytest.raises(ClosingError):
            close_program(
                "proc main(x) { var c = x; send(c, 1); }",
                env_params={"main": ["x"]},
            )

    def test_control_dependent_object_choice_is_fine(self):
        # Only *data* taint on the object argument is a problem; an
        # environment-controlled choice between two concrete channels
        # closes normally (the toss picks the channel).
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var c;
                var x;
                x = env();
                if (x % 2 == 0) { c = channel('a'); } else { c = channel('b'); }
                send(c, 1);
            }
            """
        )
        assert closed.cfgs["main"].nodes_of_kind(NodeKind.TOSS)


class TestStep4EdgeCases:
    def test_erased_loop_body_still_reaches_termination(self):
        # The tainted while-loop is eliminated; control must still flow
        # from the kept prefix to the kept return (structured control
        # flow always offers a marked termination).
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                var flag = 1;
                if (flag == 1) {
                    send(c, 1);
                } else {
                    while (x > 0) { x = x + 1; }
                }
            }
            """
        )
        cfg = closed.cfgs["main"]
        cfg.validate()
        assert cfg.nodes_of_kind(NodeKind.RETURN)
        # The tainted loop (condition and increment) is gone; only the
        # untainted declaration `var x;` (x = 0) survives.
        descriptions = [node.describe() for node in cfg]
        assert not any("x > 0" in d or "x + 1" in d or "env" in d for d in descriptions)

    def test_inescapable_unmarked_cycle_gets_exit(self):
        """succ(a) = 0: every path from the arc stays inside eliminated
        nodes forever.  Only constructible with a hand-built CFG (the
        structured builder always reaches a marked termination node), but
        Step 4 of the paper's algorithm must handle it: the divergence is
        eliminated and the process terminates."""
        from repro.cfg import ALWAYS, BoolGuard, ControlFlowGraph
        from repro.lang import ast as rc_ast

        cfg = ControlFlowGraph(proc_name="spin", params=("x",))
        start = cfg.new_node(NodeKind.START)
        cond = cfg.new_node(
            NodeKind.COND, expr=rc_ast.Binary(">", rc_ast.Name("x"), rc_ast.IntLit(0))
        )
        cfg.add_arc(start.id, cond.id, ALWAYS)
        cfg.add_arc(cond.id, cond.id, BoolGuard(True))
        cfg.add_arc(cond.id, cond.id, BoolGuard(False))
        cfg.validate()
        closed = close_program({"spin": cfg}, env_params={"spin": ["x"]})
        out = closed.cfgs["spin"]
        out.validate()
        assert out.nodes_of_kind(NodeKind.EXIT)

    def test_whole_body_erased_becomes_exit_or_return(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                while (x > 0) { x = x - 1; }
            }
            """
        )
        cfg = closed.cfgs["main"]
        cfg.validate()
        # START must flow to a termination node, possibly via a toss.
        kinds = {node.kind for node in cfg}
        assert NodeKind.RETURN in kinds or NodeKind.EXIT in kinds

    def test_branching_collapses_when_both_sides_erased(self):
        # if/else whose both branches are erased: one successor remains,
        # no toss is needed.
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                var keep = 0;
                if (x > 0) { var a = x + 1; } else { var b = x + 2; }
                keep = 1;
                send(c, keep);
            }
            """
        )
        cfg = closed.cfgs["main"]
        assert not cfg.nodes_of_kind(NodeKind.TOSS)

    def test_toss_on_multiway_switch(self):
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                switch (x % 3) {
                case 0: send(c, 'a');
                case 1: send(c, 'b');
                default: send(c, 'd');
                }
            }
            """
        )
        cfg = closed.cfgs["main"]
        toss = cfg.nodes_of_kind(NodeKind.TOSS)
        assert len(toss) == 1
        assert toss[0].bound == 2

    def test_untainted_program_unchanged_in_behavior(self):
        source = """
        proc main() {
            var i = 0;
            while (i < 3) { send(c, i); i = i + 1; }
        }
        """
        closed = close_program(source)
        cfg = closed.cfgs["main"]
        assert not cfg.nodes_of_kind(NodeKind.TOSS)
        assert closed.nodes_eliminated == 0

    def test_stats_accounting(self):
        closed = close_program(FIG2, env_params={"p": ["x"]})
        stats = closed.proc_stats["p"]
        assert stats.nodes_before == 9
        assert stats.toss_nodes == 1
        assert stats.removed_params == ("x",)
        assert stats.eliminated >= 2  # y assign + cond (at least)
        assert closed.toss_nodes_added == 1
