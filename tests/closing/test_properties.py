"""Hypothesis property tests over randomly generated open programs.

Complements the example-based suites with machine-generated coverage of
the pipeline invariants: normalization, CFG structure, define-use
consistency, marking rules, and exploration determinism.
"""

from hypothesis import given, settings, strategies as st

from tests.helpers import dfs_search
from repro import System, close_program
from repro.cfg import NodeKind, build_cfgs
from repro.closing import analyze_for_closing
from repro.closing.generators import GeneratorConfig, generate_program
from repro.dataflow.alias import analyze_aliases
from repro.dataflow.defuse import compute_defuse
from repro.lang.parser import parse_program

seeds = st.integers(min_value=0, max_value=10_000)

SMALL = GeneratorConfig(max_depth=2, statements_per_block=(2, 3), loop_bound=(1, 2))


class TestPipelineInvariants:
    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_cfgs_always_validate(self, seed):
        cfgs = build_cfgs(parse_program(generate_program(seed, SMALL)))
        for cfg in cfgs.values():
            cfg.validate()

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_defuse_arcs_are_consistent(self, seed):
        cfgs = build_cfgs(parse_program(generate_program(seed, SMALL)))
        points_to = analyze_aliases(cfgs)
        for proc, cfg in cfgs.items():
            graph = compute_defuse(cfg, points_to.local_pointer_map(proc))
            for arc in graph.arcs:
                defs = graph.accesses[arc.def_node].defined_vars()
                if arc.def_node == cfg.start_id:
                    defs |= set(cfg.params)
                assert arc.var in defs
                assert arc.var in graph.accesses[arc.use_node].uses

    @given(seeds)
    @settings(max_examples=60, deadline=None)
    def test_marking_rules(self, seed):
        cfgs = build_cfgs(parse_program(generate_program(seed, SMALL)))
        analysis = analyze_for_closing(cfgs)
        for proc, pa in analysis.procs.items():
            cfg = pa.cfg
            assert cfg.start_id in pa.marked
            for node in cfg:
                if node.kind in (NodeKind.RETURN, NodeKind.EXIT):
                    assert node.id in pa.marked
                elif node.kind is NodeKind.CALL and node.callee in cfgs:
                    assert node.id in pa.marked
                elif node.kind in (NodeKind.ASSIGN, NodeKind.COND):
                    # marked iff untainted
                    assert (node.id in pa.marked) == (node.id not in pa.n_i)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_closed_graphs_validate_and_are_closed(self, seed):
        closed = close_program(generate_program(seed, SMALL))
        for cfg in closed.cfgs.values():
            cfg.validate()
        reanalysis = analyze_for_closing(closed.cfgs)
        for pa in reanalysis.procs.values():
            assert pa.n_i == frozenset()

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_optimize_preserves_validity(self, seed):
        closed = close_program(generate_program(seed, SMALL), optimize=True)
        for cfg in closed.cfgs.values():
            cfg.validate()


class TestExplorationDeterminism:
    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_exploration_is_reproducible(self, seed):
        source = generate_program(seed, SMALL)
        closed = close_program(source)

        def run_once():
            system = System(closed.cfgs)
            system.add_env_sink("out")
            system.add_process("P", "main", [])
            return dfs_search(system, max_depth=60, por=False)

        a, b = run_once(), run_once()
        assert a.paths_explored == b.paths_explored
        assert a.transitions_executed == b.transitions_executed
        assert a.states_visited == b.states_visited

    @given(seeds)
    @settings(max_examples=25, deadline=None)
    def test_por_never_loses_assert_or_deadlock_on_single_process(self, seed):
        # With one process POR must change nothing at all.
        source = generate_program(seed, SMALL)
        closed = close_program(source)

        def run(por):
            system = System(closed.cfgs)
            system.add_env_sink("out")
            system.add_process("P", "main", [])
            return dfs_search(system, max_depth=60, por=por)

        full, reduced = run(False), run(True)
        assert full.paths_explored == reduced.paths_explored
        assert full.transitions_executed == reduced.transitions_executed
