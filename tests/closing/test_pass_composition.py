"""Composition of the optional passes: hoist → close → optimize, and
partition → optimize — behaviour must be stable through any pipeline."""

import pytest

from tests.helpers import single_process_behaviors

from repro import close_program
from repro.closing import close_with_partitioning, unswitch_program
from repro.closing.generators import GeneratorConfig, generate_program
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program

SMALL = GeneratorConfig(max_depth=2, statements_per_block=(2, 3), loop_bound=(1, 2))

FIG2 = """
extern proc env();
proc main() {
    var x;
    x = env();
    var y = x % 2;
    var cnt = 0;
    while (cnt < 3) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""


class TestPipelines:
    def test_hoist_then_close_then_optimize(self):
        program, _ = unswitch_program(normalize_program(parse_program(FIG2)))
        closed = close_program(program, optimize=True)
        for cfg in closed.cfgs.values():
            cfg.validate()
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("even",) * 3, ("odd",) * 3}

    def test_partition_then_optimize(self):
        closed, report = close_with_partitioning(FIG2, optimize=True)
        assert report.sites
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {("even",) * 3, ("odd",) * 3}

    def test_optimize_is_idempotent(self):
        closed = close_program(FIG2).optimize()
        again = closed.optimize()
        assert sum(c.node_count() for c in closed.cfgs.values()) == sum(
            c.node_count() for c in again.cfgs.values()
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_all_pipelines_agree_on_behaviour_inclusion(self, seed):
        """Every pipeline's behaviour set must contain the plain one
        only shrinking toward (never below) the exact semantics."""
        source = generate_program(seed, SMALL)
        plain = close_program(source)
        plain_traces = single_process_behaviors(plain.cfgs, "main", max_depth=80)

        optimized = close_program(source, optimize=True)
        optimized_traces = single_process_behaviors(
            optimized.cfgs, "main", max_depth=80
        )
        assert optimized_traces == plain_traces  # clean-up is behaviour-neutral

        hoisted_prog, _ = unswitch_program(
            normalize_program(parse_program(source))
        )
        hoisted = close_program(hoisted_prog)
        hoisted_traces = single_process_behaviors(hoisted.cfgs, "main", max_depth=80)
        assert hoisted_traces <= plain_traces  # hoisting only tightens

        partitioned, _ = close_with_partitioning(source)
        partitioned_traces = single_process_behaviors(
            partitioned.cfgs, "main", max_depth=80
        )
        assert partitioned_traces <= plain_traces  # partitioning only tightens
