"""Empirical checks of the paper's correctness results.

* **Lemma 5** — the transformed system is closed: re-running Steps 2–3
  over the closed program finds no environment dependence anywhere
  (``V_I(n') = ∅`` for every node).
* **Theorem 6** — simulation: every computation of ``S × E_S`` (with the
  environment restricted to a finite domain so it can be enumerated via
  the naive closing) has a matching computation of ``S'`` exhibiting the
  same sequence of visible operations, with erased values matching
  anything.
* **Theorem 7** — deadlocks and preserved-assertion violations of
  ``S × E_S`` appear in ``S'`` too.

These run both on hand-written programs and on randomly generated ones.
"""

import pytest

from tests.helpers import dfs_search, behavior_inclusion

from repro import System, close_naively, close_program
from repro.closing import analyze_for_closing
from repro.closing.generators import GeneratorConfig, generate_program
from repro.closing.naive import NaiveDomains
from repro.verisoft import collect_output_traces

#: Small generated programs keep the naive |V|^k enumeration feasible.
SMALL = GeneratorConfig(
    max_depth=2,
    statements_per_block=(2, 3),
    loop_bound=(1, 2),
    n_env_inputs=2,
)


def closed_is_closed(closed):
    """Lemma 5 check: no node of the closed program uses env values."""
    analysis = analyze_for_closing(closed.cfgs)
    for proc, pa in analysis.procs.items():
        assert pa.n_i == frozenset(), f"{proc} still has N_I = {pa.n_i}"
        for node_id, vi in pa.vi.items():
            assert not vi, f"{proc} node {node_id} has V_I = {vi}"


def behaviors(cfgs, proc="main", max_depth=120):
    system = System(cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return collect_output_traces(system, "out", max_depth=max_depth)


FIXED_PROGRAMS = [
    # Figure 2.
    """
    extern proc env_input_0();
    proc main() {
        var x;
        x = env_input_0();
        var y = x % 2;
        var cnt = 0;
        while (cnt < 4) {
            if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
            cnt = cnt + 1;
        }
    }
    """,
    # Figure 3.
    """
    extern proc env_input_0();
    proc main() {
        var x;
        x = env_input_0();
        var cnt = 0;
        while (cnt < 4) {
            var y = x % 2;
            if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
            x = x / 2;
            cnt = cnt + 1;
        }
    }
    """,
    # Mixed tainted/untainted computation with a helper procedure.
    """
    extern proc env_input_0();
    proc scale(v) { return v * 3; }
    proc main() {
        var x;
        x = env_input_0();
        var base;
        base = scale(2);
        send(out, base);
        if (x > 5) { send(out, 'high'); } else { send(out, 'low'); }
        send(out, base + 1);
    }
    """,
    # Tainted value transmitted on the sink (erased to top).
    """
    extern proc env_input_0();
    proc main() {
        var x;
        x = env_input_0();
        send(out, 'begin');
        send(out, x % 4);
        send(out, 'end');
    }
    """,
    # Environment value consumed by a switch.
    """
    extern proc env_input_0();
    proc main() {
        var x;
        x = env_input_0();
        switch (x % 3) {
        case 0: send(out, 'zero');
        case 1: send(out, 'one');
        default: send(out, 'more');
        }
    }
    """,
]


class TestLemma5:
    @pytest.mark.parametrize("source", FIXED_PROGRAMS)
    def test_fixed_programs(self, source):
        closed_is_closed(close_program(source))

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs(self, seed):
        closed_is_closed(close_program(generate_program(seed)))

    @pytest.mark.parametrize("seed", range(12))
    def test_small_generated_programs(self, seed):
        closed_is_closed(close_program(generate_program(seed, SMALL)))

    def test_closing_is_idempotent_on_behaviour(self):
        source = FIXED_PROGRAMS[0]
        once = close_program(source)
        twice = close_program(once.cfgs)
        assert behaviors(once.cfgs) == behaviors(twice.cfgs)


class TestTheorem6Inclusion:
    DOMAIN = [0, 1, 2, 5]

    def _check_inclusion(self, source):
        naive = close_naively(
            source, NaiveDomains(default=self.DOMAIN)
        )
        auto = close_program(source)
        open_traces = behaviors(naive.cfgs)
        closed_traces = behaviors(auto.cfgs)
        assert behavior_inclusion(open_traces, closed_traces), (
            f"missing behaviours: open={sorted(open_traces)[:5]} "
            f"closed={sorted(closed_traces)[:5]}"
        )

    @pytest.mark.parametrize("source", FIXED_PROGRAMS)
    def test_fixed_programs(self, source):
        self._check_inclusion(source)

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs(self, seed):
        self._check_inclusion(generate_program(seed, SMALL))

    def test_figure2_is_strict_upper_approximation(self):
        source = FIXED_PROGRAMS[0]
        naive = close_naively(source, NaiveDomains(default=list(range(16))))
        auto = close_program(source)
        open_traces = behaviors(naive.cfgs)
        closed_traces = behaviors(auto.cfgs)
        assert behavior_inclusion(open_traces, closed_traces)
        assert len(closed_traces) > len(open_traces)  # strictness


class TestTheorem7Preservation:
    def test_deadlock_preserved(self):
        # Whether the deadlock occurs depends on an environment value in
        # the *original*; the closed system must still exhibit it.
        source = """
        extern proc env();
        proc a() {
            var x;
            x = env();
            if (x % 2 == 0) { sem_p(s1); sem_p(s2); sem_v(s2); sem_v(s1); }
        }
        proc b() {
            sem_p(s2);
            sem_p(s1);
            sem_v(s1);
            sem_v(s2);
        }
        """

        def build(cfgs):
            system = System(cfgs)
            system.add_semaphore("s1", 1)
            system.add_semaphore("s2", 1)
            system.add_process("a", "a", [])
            system.add_process("b", "b", [])
            return system

        naive = close_naively(source, NaiveDomains(default=[0, 1]))
        auto = close_program(source)
        open_report = dfs_search(build(naive.cfgs), max_depth=30)
        closed_report = dfs_search(build(auto.cfgs), max_depth=30)
        assert open_report.deadlocks  # ground truth: reachable in S x Es
        assert closed_report.deadlocks  # preserved in S'

    def test_preserved_assertion_violation_survives(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            var counter = 0;
            if (x % 2 == 0) { counter = counter + 1; }
            if (x % 3 == 0) { counter = counter + 1; }
            VS_assert(counter < 2);
        }
        """

        def build(cfgs):
            system = System(cfgs)
            system.add_process("m", "main", [])
            return system

        naive = close_naively(source, NaiveDomains(default=list(range(7))))
        auto = close_program(source)
        open_report = dfs_search(build(naive.cfgs), max_depth=30)
        closed_report = dfs_search(build(auto.cfgs), max_depth=30)
        assert open_report.violations  # x = 6 violates in S x Es
        assert closed_report.violations

    def test_nonpreserved_assertion_never_fires_spuriously_as_preserved(self):
        # An erased assertion subject passes vacuously in S'.
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            VS_assert(x >= 0);
            send(out, 'after');
        }
        """
        auto = close_program(source)
        system = System(auto.cfgs)
        system.add_env_sink("out")
        system.add_process("m", "main", [])
        report = dfs_search(system, max_depth=20)
        assert not report.violations
        assert report.ok


class TestBranchingDegreeClaim:
    """Section 1: 'our transformation preserves, or may even reduce, the
    static degree of branching of the original code'.

    Formally: every inserted ``VS_toss`` branches over ``|succ(a)|``
    *distinct* marked continuations, which never exceeds the number of
    control-flow paths through the erased region it replaces (and is
    strictly smaller whenever erased branches reconverge)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_toss_fanout_bounded_by_region_paths(self, seed):
        closed = close_program(generate_program(seed))
        for proc, stats in closed.proc_stats.items():
            assert stats.branching_preserved(), (proc, stats.toss_details)

    @pytest.mark.parametrize("source", FIXED_PROGRAMS)
    def test_fixed_programs(self, source):
        closed = close_program(source)
        for stats in closed.proc_stats.values():
            assert stats.branching_preserved()

    def test_reconvergence_strictly_reduces(self):
        # Both erased branches compute different tainted data but meet at
        # the same send: no toss is needed at all (2 paths -> 1 target).
        closed = close_program(
            """
            extern proc env();
            proc main() {
                var x;
                x = env();
                var y;
                if (x > 0) { y = x; } else { y = x + 1; }
                send(out, 'done');
            }
            """
        )
        stats = closed.proc_stats["main"]
        assert stats.toss_nodes == 0

    def test_single_erased_cond_keeps_degree_two(self):
        closed = close_program(FIXED_PROGRAMS[0])
        stats = closed.proc_stats["main"]
        assert stats.toss_details
        for _, fanout, paths in stats.toss_details:
            assert fanout == 2 and paths == 2
