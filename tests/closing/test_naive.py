"""Tests for the naive explicit-environment baseline (Section 3)."""

import pytest

from tests.helpers import dfs_search, single_process_behaviors

from repro import System, close_naively
from repro.closing import ClosingError, ClosingSpec
from repro.closing.naive import NaiveDomains


class TestDomains:
    def test_call_domain_lookup(self):
        domains = NaiveDomains(call_results={"f": [1, 2]})
        assert domains.for_call("f") == [1, 2]

    def test_default_fallback(self):
        domains = NaiveDomains(default=[0])
        assert domains.for_call("anything") == [0]

    def test_missing_domain_rejected(self):
        domains = NaiveDomains()
        with pytest.raises(ClosingError):
            domains.for_call("f")

    def test_empty_domain_rejected(self):
        domains = NaiveDomains(call_results={"f": []})
        with pytest.raises(ClosingError):
            domains.for_call("f")


class TestRewriting:
    SOURCE = """
    extern proc get();
    proc main() {
        var x;
        x = get();
        if (x == 1) { send(out, 'one'); } else { send(out, 'other'); }
    }
    """

    def test_behaviours_enumerate_domain(self):
        naive = close_naively(self.SOURCE, {"get": [0, 1, 2]})
        traces = single_process_behaviors(naive.cfgs, "main")
        assert traces == {("one",), ("other",)}

    def test_branching_statistics(self):
        naive = close_naively(self.SOURCE, {"get": [0, 1, 2, 3]})
        assert naive.input_points == 1
        assert naive.total_branching == 4

    def test_path_count_equals_domain_size(self):
        naive = close_naively(self.SOURCE, {"get": list(range(5))})
        system = System(naive.cfgs)
        system.add_env_sink("out")
        system.add_process("m", "main", [])
        report = dfs_search(system, max_depth=20, por=False)
        assert report.paths_explored == 5

    def test_discarded_input_not_branched(self):
        source = "extern proc get(); proc main() { get(); send(out, 'done'); }"
        naive = close_naively(source, {"get": list(range(50))})
        system = System(naive.cfgs)
        system.add_env_sink("out")
        system.add_process("m", "main", [])
        report = dfs_search(system, max_depth=20, por=False)
        assert report.paths_explored == 1

    def test_multiple_input_points_multiply(self):
        source = """
        extern proc get();
        proc main() {
            var a;
            a = get();
            var b;
            b = get();
            send(out, a * 10 + b);
        }
        """
        naive = close_naively(source, {"get": [0, 1, 2]})
        traces = single_process_behaviors(naive.cfgs, "main")
        assert len(traces) == 9

    def test_string_domains(self):
        source = """
        extern proc get_event();
        proc main() {
            var e;
            e = get_event();
            switch (e) {
            case 'offhook': send(out, 1);
            default: send(out, 0);
            }
        }
        """
        naive = close_naively(source, {"get_event": ["offhook", "onhook"]})
        traces = single_process_behaviors(naive.cfgs, "main")
        assert traces == {(1,), (0,)}

    def test_env_param_domain(self):
        source = "proc main(x) { if (x > 0) { send(out, 'pos'); } else { send(out, 'neg'); } }"
        spec = ClosingSpec.make(env_params={"main": ["x"]})
        naive = close_naively(
            source,
            NaiveDomains(params={("main", "x"): [-1, 1]}),
            spec,
        )
        # The parameter remains in the signature; the launch value is a
        # dummy immediately overwritten by the environment's choice.
        traces = single_process_behaviors(naive.cfgs, "main", args=(0,))
        assert traces == {("pos",), ("neg",)}

    def test_env_channel_domain(self):
        source = """
        proc main() {
            var v;
            v = recv(inbox);
            send(out, v + 1);
        }
        """
        spec = ClosingSpec.make(env_channels=["inbox"])
        naive = close_naively(
            source, NaiveDomains(channels={"inbox": [10, 20]}), spec
        )
        traces = single_process_behaviors(naive.cfgs, "main")
        assert traces == {(11,), (21,)}

    def test_per_callee_domains(self):
        source = """
        extern proc small();
        extern proc big();
        proc main() {
            var a;
            a = small();
            var b;
            b = big();
            send(out, a + b);
        }
        """
        naive = close_naively(
            source,
            NaiveDomains(call_results={"small": [0, 1], "big": [100, 200, 300]}),
        )
        traces = single_process_behaviors(naive.cfgs, "main")
        assert len(traces) == 6

    def test_original_graph_unchanged(self):
        from repro.cfg import build_cfgs
        from repro.lang.parser import parse_program

        cfgs = build_cfgs(parse_program(self.SOURCE))
        before = cfgs["main"].node_count()
        close_naively(cfgs, {"get": [0, 1]})
        assert cfgs["main"].node_count() == before
