"""Tests for loop unswitching (the Section 5 hoisting suggestion)."""

import pytest

from tests.helpers import dfs_search, single_process_behaviors

from repro import System, close_program
from repro.closing.generators import generate_program
from repro.closing.hoist import unswitch_program
from repro.lang import ast
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program

FIG2 = """
extern proc env();
proc main() {
    var x;
    x = env();
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""


def unswitched(source):
    program = normalize_program(parse_program(source))
    return unswitch_program(program)


def paths_of(cfgs, proc="main"):
    system = System(cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return dfs_search(system, max_depth=60, por=False).paths_explored


class TestUnswitching:
    def test_invariant_conditional_hoisted(self):
        program, stats = unswitched(FIG2)
        assert stats["main"].unswitched == 1
        top_level = program.procs["main"].body
        # The outermost statement structure now ends in an If over two
        # specialised loops.
        last = top_level[-1]
        assert isinstance(last, ast.If)
        assert any(isinstance(s, ast.While) for s in last.then_body)
        assert any(isinstance(s, ast.While) for s in last.else_body)

    def test_variant_conditional_not_hoisted(self):
        program, stats = unswitched(
            """
            proc main(n) {
                var i = 0;
                while (i < n) {
                    if (i % 2 == 0) { send(out, 'e'); } else { send(out, 'o'); }
                    i = i + 1;
                }
            }
            """
        )
        assert stats["main"].unswitched == 0

    def test_address_taken_guard_not_hoisted(self):
        program, stats = unswitched(
            """
            proc main(y) {
                var p = &y;
                var i = 0;
                while (i < 3) {
                    if (y == 0) { send(out, 'a'); }
                    *p = *p + 1;
                    i = i + 1;
                }
            }
            """
        )
        assert stats["main"].unswitched == 0

    def test_loop_with_break_not_unswitched(self):
        program, stats = unswitched(
            """
            proc main(y) {
                var i = 0;
                while (i < 3) {
                    if (y == 0) { send(out, 'a'); }
                    if (i == 1) { break; }
                    i = i + 1;
                }
            }
            """
        )
        assert stats["main"].unswitched == 0

    def test_guard_passed_to_user_call_not_hoisted(self):
        program, stats = unswitched(
            """
            proc touch(v) { }
            proc main(y) {
                var i = 0;
                while (i < 3) {
                    if (y == 0) { send(out, 'a'); }
                    touch(y);
                    i = i + 1;
                }
            }
            """
        )
        assert stats["main"].unswitched == 0

    def test_budget_limits_growth(self):
        source = """
        proc main(a, b, c) {
            var i = 0;
            while (i < 2) {
                if (a == 0) { send(out, 1); }
                if (b == 0) { send(out, 2); }
                if (c == 0) { send(out, 3); }
                i = i + 1;
            }
        }
        """
        program = normalize_program(parse_program(source))
        __, stats = unswitch_program(program, max_unswitches=2)
        assert stats["main"].unswitched == 2

    def test_behaviour_preserved(self):
        program, _ = unswitched(FIG2)
        # Compare under the naive closing with a tiny domain (both sides
        # deterministic given the input).
        from repro.closing import NaiveDomains, close_naively

        before = close_naively(parse_program(FIG2), NaiveDomains(default=[0, 1, 2, 3]))
        after = close_naively(program, NaiveDomains(default=[0, 1, 2, 3]))
        assert single_process_behaviors(before.cfgs, "main") == (
            single_process_behaviors(after.cfgs, "main")
        )


class TestHoistingFixesTemporalImprecision:
    def test_figure2_paths_drop_from_1024_to_2(self):
        plain = close_program(FIG2)
        program, _ = unswitched(FIG2)
        hoisted = close_program(program)
        assert paths_of(plain.cfgs) == 1024
        assert paths_of(hoisted.cfgs) == 2

    def test_behaviour_superset_maintained(self):
        # Hoisting before closing can only *tighten* the approximation:
        # the hoisted closed program's behaviours are included in the
        # plain closed program's.
        plain = close_program(FIG2)
        program, _ = unswitched(FIG2)
        hoisted = close_program(program)
        plain_traces = single_process_behaviors(plain.cfgs, "main")
        hoisted_traces = single_process_behaviors(hoisted.cfgs, "main")
        assert hoisted_traces <= plain_traces
        assert hoisted_traces == {("even",) * 10, ("odd",) * 10}

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_programs_closable_after_hoisting(self, seed):
        source = generate_program(seed)
        program, _ = unswitched(source)
        closed = close_program(program)
        for cfg in closed.cfgs.values():
            cfg.validate()
