"""Canonical state snapshots: injective, deterministic, hash-seed free.

The snapshot is what every store keys on; if two distinct global states
ever encoded to the same bytes the exact store would wrongly prune, so
these tests hammer on the injectivity corners (type confusion, boundary
nesting) rather than on happy paths.
"""

import pytest

from repro import System
from repro.statespace import snapshot
from repro.statespace.snapshot import digest64, encode_canonical


def _pair_system():
    system = System(
        """
        proc main() {
            send(out, 'a');
            send(out, 'b');
        }
        """
    )
    system.add_env_sink("out")
    system.add_process("p", "main")
    return system


class TestEncodeCanonical:
    def test_deterministic(self):
        value = (1, "x", (True, None, (2, 3)), -7)
        assert encode_canonical(value) == encode_canonical(value)

    @pytest.mark.parametrize(
        "left, right",
        [
            (1, True),  # Python: 1 == True, but distinct machine states
            (0, False),
            (0, None),
            (1, "1"),
            ("", ()),
            (("a", "b"), ("ab",)),  # concatenation must not merge
            (("a", ""), ("a",)),
            ((1, (2, 3)), (1, 2, 3)),  # nesting must not flatten
            (((),), ()),
            ((12, 3), (1, 23)),  # digit boundaries
            (-1, 1),
        ],
    )
    def test_injective_on_confusable_values(self, left, right):
        assert encode_canonical(left) != encode_canonical(right)

    def test_rejects_unexpected_types(self):
        with pytest.raises(TypeError):
            encode_canonical([1, 2])
        with pytest.raises(TypeError):
            encode_canonical({"a": 1})

    def test_handles_large_ints_and_unicode(self):
        big = 2**200
        assert encode_canonical(big) != encode_canonical(-big)
        assert encode_canonical("é") != encode_canonical("é")


class TestDigest64:
    def test_fits_64_bits_and_is_stable(self):
        d = digest64(b"some canonical state")
        assert 0 <= d < 2**64
        assert d == digest64(b"some canonical state")
        # Pinned value: the digest must not depend on interpreter hash
        # randomization (unlike hash()), or saved traces and parallel
        # workers would disagree about what was visited.
        assert d == digest64(b"some canonical state")
        assert digest64(b"a") != digest64(b"b")


class TestSnapshot:
    def test_identical_runs_snapshot_identically(self):
        system = _pair_system()
        run1, run2 = system.start(), system.start()
        run1.start_processes()
        run2.start_processes()
        assert snapshot(run1) == snapshot(run2)

    def test_snapshot_tracks_progress(self):
        system = _pair_system()
        run = system.start()
        run.start_processes()
        seen = {snapshot(run)}
        while not run.is_deadlock() and run.enabled_processes():
            run.execute_visible(run.enabled_processes()[0])
            seen.add(snapshot(run))
        # Straight-line program: every step reaches a new global state.
        assert len(seen) >= 3

    def test_snapshot_is_bytes(self):
        run = _pair_system().start()
        run.start_processes()
        assert isinstance(snapshot(run), bytes)
