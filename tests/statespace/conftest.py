"""Shared builders for the state-space caching tests.

The Figure 2/3 programs (closed, with seeded assertions) have diamond
structure — different toss orders converge on the same (cnt, odds)
counter state — so a cached search has genuine revisits to prune, which
is exactly what the parity tests need.
"""

import pytest

from repro import System, close_program

FIG2_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    var odds = 0;
    while (cnt < 3) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); odds = odds + 1; }
        cnt = cnt + 1;
    }
    VS_assert(odds < 3);
}
"""

FIG3_SRC = """
proc q(x) {
    var cnt = 0;
    var odds = 0;
    while (cnt < 3) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); odds = odds + 1; }
        VS_assert(odds < 2);
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""

DEADLOCK_SRC = """
proc grab(first, second) {
    sem_p(first);
    sem_p(second);
    sem_v(second);
    sem_v(first);
}
"""


def figure_system(source, proc):
    """Close a Figure 2/3 program and wrap it in a runnable system."""
    closed = close_program(source, env_params={proc: ["x"]})
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return system


def deadlock_system():
    """The classic lock-order deadlock pair."""
    system = System(DEADLOCK_SRC)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


def triage_signatures(report):
    """The sorted violation-group signatures of a report — the unit of
    comparison for cached-vs-uncached parity (counters differ by
    design; what must not differ is *which bugs* were found)."""
    return sorted(group.signature for group in report.triage())


@pytest.fixture()
def fig2_system():
    return figure_system(FIG2_SRC, "p")


@pytest.fixture()
def fig3_system():
    return figure_system(FIG3_SRC, "q")
