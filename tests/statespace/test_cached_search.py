"""State caching plugged into the search: the parity contract.

The cache is only allowed to change *how much work* the search does —
never *what it finds*.  Every test here compares a cached search to the
uncached baseline on the same system and asserts the two report the
same violation-triage groups; the cached one must also do strictly less
work where the state space has diamonds (Figure 2/3 do: different toss
orders converge on the same counter states).
"""

import pytest

from repro import SearchOptions, run_search
from repro.counterex import load_trace, save_report_traces, verify_trace
from repro.fiveess.app import demo_system

from .conftest import triage_signatures


def _search(system, **kwargs):
    return run_search(system, SearchOptions(max_depth=60, **kwargs))


@pytest.fixture(params=["fig2_system", "fig3_system"])
def figure(request):
    return request.getfixturevalue(request.param)


class TestSequentialParity:
    def test_exact_cache_same_triage_strictly_fewer_transitions(self, figure):
        baseline = _search(figure)
        cached = _search(figure, state_cache="exact")
        assert triage_signatures(cached) == triage_signatures(baseline)
        assert cached.transitions_executed < baseline.transitions_executed
        assert cached.stats.cache_hits > 0

    @pytest.mark.parametrize("kind", ["hashcompact", "bitstate"])
    def test_compact_stores_find_the_same_bugs(self, figure, kind):
        baseline = _search(figure)
        cached = _search(figure, state_cache=kind, cache_bits=20)
        assert triage_signatures(cached) == triage_signatures(baseline)
        assert cached.transitions_executed < baseline.transitions_executed

    def test_uncached_report_has_no_caching_block(self, fig2_system):
        report = _search(fig2_system)
        assert report.state_caching is None
        assert report.stats.state_cache == "off"
        assert "cache=" not in report.summary()


class TestProvenance:
    def test_report_records_cache_configuration(self, fig2_system):
        report = _search(fig2_system, state_cache="exact")
        assert report.state_caching == {
            "store": "exact",
            "mode": "safe",
            "sleep_sets": False,
        }
        assert "cache=exact" in report.summary()
        stats = report.stats
        assert stats.state_cache == "exact"
        assert stats.cache_misses == stats.cache_stored > 0
        assert stats.cache_hit_ratio is not None
        assert "state cache:" in stats.describe()

    def test_bitstate_records_its_shape(self, fig2_system):
        report = _search(fig2_system, state_cache="bitstate", cache_bits=12)
        assert report.state_caching["store"] == "bitstate"
        assert report.state_caching["cache_bits"] == 12

    def test_unsafe_fast_keeps_sleep_sets(self, fig2_system):
        report = _search(fig2_system, state_cache="exact", cache_mode="unsafe-fast")
        assert report.state_caching["mode"] == "unsafe-fast"
        assert report.state_caching["sleep_sets"] is True

    def test_saved_traces_carry_the_cache_config(self, fig2_system, tmp_path):
        # Counterexample provenance: a trace found by a cached search
        # must say so, because a cached search's counters (and, with
        # lossy stores, even its findings) depend on the store.
        report = _search(fig2_system, state_cache="hashcompact")
        written = save_report_traces(tmp_path, report, system=fig2_system)
        assert written
        options = load_trace(written[0]).search["options"]
        assert options["state_cache"] == "hashcompact"
        assert options["cache_mode"] == "safe"
        assert options["cache_bits"] == 24

    def test_traces_from_cached_searches_replay(self, fig3_system, tmp_path):
        report = _search(fig3_system, state_cache="exact")
        written = save_report_traces(tmp_path, report, system=fig3_system)
        verdict = verify_trace(fig3_system, load_trace(written[0]))
        assert verdict.ok


class TestValidation:
    def test_unknown_store_rejected(self, fig2_system):
        with pytest.raises(ValueError, match="unknown state cache"):
            _search(fig2_system, state_cache="lru")

    def test_unknown_mode_rejected(self, fig2_system):
        with pytest.raises(ValueError, match="unknown cache mode"):
            _search(fig2_system, state_cache="exact", cache_mode="yolo")

    def test_bitstate_bits_range_checked(self, fig2_system):
        with pytest.raises(ValueError, match="cache_bits"):
            _search(fig2_system, state_cache="bitstate", cache_bits=64)

    def test_random_strategy_ignores_cache_silently(self, fig2_system):
        # Random walks revisit by design; the cache fields are simply
        # unused (like `walks` is by dfs), not an error.
        report = _search(fig2_system, strategy="random", walks=5, state_cache="exact")
        assert report.state_caching is None  # no store was ever consulted
        assert report.stats.cache_hits == 0


class TestParallelParity:
    def test_parallel_cached_triage_matches_sequential(self, fig2_system):
        sequential = _search(fig2_system, state_cache="exact")
        parallel = _search(
            fig2_system, strategy="parallel", jobs=2, state_cache="exact"
        )
        assert triage_signatures(parallel) == triage_signatures(sequential)
        # Per-worker stores cannot see across subtrees, so the parallel
        # run prunes at most as much as the sequential cached run.
        uncached = _search(fig2_system)
        assert (
            sequential.transitions_executed
            <= parallel.transitions_executed
            <= uncached.transitions_executed
        )

    def test_merged_report_flags_per_worker_stores(self, fig2_system):
        report = _search(
            fig2_system, strategy="parallel", jobs=2, state_cache="exact"
        )
        assert report.state_caching["store"] == "exact"
        assert report.state_caching["per_worker_stores"] is True
        assert report.stats.state_cache == "exact"


class TestMemoryFootprint:
    def test_compact_stores_are_at_least_8x_smaller_per_state(self):
        # The headline claim of hash compaction / bitstate hashing, on
        # the 5ESS case study (large snapshots: many processes + objects).
        per_state = {}
        for kind in ("exact", "hashcompact", "bitstate"):
            report = run_search(
                demo_system(),
                SearchOptions(
                    max_depth=30, max_paths=300, state_cache=kind, cache_bits=16
                ),
            )
            assert report.stats.cache_stored > 50
            per_state[kind] = report.stats.cache_bytes_per_state
        assert per_state["exact"] >= 8 * per_state["hashcompact"]
        assert per_state["exact"] >= 8 * per_state["bitstate"]

    def test_exact_store_charges_real_snapshot_bytes(self, fig2_system):
        report = _search(fig2_system, state_cache="exact")
        stats = report.stats
        # Figure 2 snapshots are dozens of bytes; the accounting must
        # reflect that, not a token constant.
        assert stats.cache_bytes_per_state > 16
        assert stats.cache_memory_bytes > stats.cache_stored * 16
