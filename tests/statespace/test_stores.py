"""The store implementations, independent of any explorer.

Stores see only byte keys and depth budgets, so they can be tested
exhaustively with synthetic keys; the search-level behaviour lives in
``test_cached_search.py``.
"""

import pytest

from repro.statespace import (
    STORE_KINDS,
    BitstateStore,
    ExactStore,
    HashCompactStore,
    make_store,
)


class TestExactStore:
    def test_first_visit_expands_revisit_prunes(self):
        store = ExactStore()
        assert store.visit(b"s1", 10) is True
        assert store.visit(b"s1", 10) is False
        assert store.visit(b"s1", 5) is False  # smaller budget: still pruned
        assert (store.hits, store.misses) == (2, 1)
        assert store.states_stored == 1

    def test_larger_budget_forces_reexpansion(self):
        # A state first met near the depth bound has an under-explored
        # subtree; a shallower revisit must be expanded again or the
        # bound would silently eat coverage.
        store = ExactStore()
        assert store.visit(b"s1", 3) is True
        assert store.visit(b"s1", 8) is True
        assert store.visit(b"s1", 8) is False  # budget now remembered
        assert store.misses == 2

    def test_memory_charges_key_bytes(self):
        store = ExactStore()
        store.visit(b"x" * 100, 1)
        store.visit(b"y" * 50, 1)
        assert store.states_stored == 2
        assert store.memory_bytes == 100 + 50 + 2 * 8
        # Re-expanding an existing key must not double-charge it.
        store.visit(b"x" * 100, 9)
        assert store.memory_bytes == 100 + 50 + 2 * 8

    def test_distinct_keys_never_collide(self):
        store = ExactStore()
        keys = [bytes([i, j]) for i in range(16) for j in range(16)]
        assert all(store.visit(k, 1) for k in keys)
        assert store.states_stored == len(keys)


class TestHashCompactStore:
    def test_visit_semantics_match_exact(self):
        store = HashCompactStore()
        assert store.visit(b"s1", 10) is True
        assert store.visit(b"s1", 10) is False
        assert store.visit(b"s1", 20) is True  # depth-aware, like exact
        assert store.states_stored == 1

    def test_sixteen_bytes_per_state_regardless_of_key_size(self):
        store = HashCompactStore()
        store.visit(b"k" * 10_000, 1)
        store.visit(b"tiny", 1)
        assert store.memory_bytes == 32
        assert store.memory_bytes / store.states_stored == 16.0


class TestBitstateStore:
    def test_visit_and_fixed_footprint(self):
        store = BitstateStore(bits=10)
        assert store.visit(b"s1", 10) is True
        assert store.visit(b"s1", 10) is False
        assert store.memory_bytes == (1 << 10) // 8  # fixed, not per-state
        assert store.states_stored == 1

    def test_ignores_depth_budget(self):
        # Single bits cannot store a budget; a deeper revisit is still
        # pruned (documented unsoundness under a depth bound).
        store = BitstateStore(bits=10)
        store.visit(b"s1", 3)
        assert store.visit(b"s1", 100) is False

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            BitstateStore(bits=2)
        with pytest.raises(ValueError):
            BitstateStore(bits=41)
        with pytest.raises(ValueError):
            BitstateStore(bits=10, hashes=0)

    def test_saturation_produces_false_positives(self):
        # A tiny filter must eventually claim fresh states were seen —
        # the probabilistic trade-off the docstring advertises.
        store = BitstateStore(bits=3, hashes=1)  # 8 bits total
        results = [store.visit(b"key-%d" % i, 1) for i in range(64)]
        assert not all(results)
        assert store.hits > 0

    def test_config_records_shape(self):
        assert BitstateStore(bits=12, hashes=3).config() == {
            "store": "bitstate",
            "cache_bits": 12,
            "hashes": 3,
        }


class TestMakeStore:
    def test_off_means_no_store(self):
        assert make_store("off") is None

    @pytest.mark.parametrize(
        "kind, cls",
        [("exact", ExactStore), ("hashcompact", HashCompactStore), ("bitstate", BitstateStore)],
    )
    def test_dispatch(self, kind, cls):
        store = make_store(kind, cache_bits=12)
        assert isinstance(store, cls)
        assert store.kind == kind
        assert store.config()["store"] == kind

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown state store"):
            make_store("lru")

    def test_store_kinds_is_the_cli_vocabulary(self):
        assert STORE_KINDS == ("off", "exact", "hashcompact", "bitstate")

    def test_describe_mentions_counts(self):
        store = make_store("exact")
        store.visit(b"k", 1)
        store.visit(b"k", 1)
        text = store.describe()
        assert "1 states" in text and "1 hits" in text
