"""Tests for the pycparser-based C front end."""

import pytest

pytest.importorskip("pycparser")

from repro.lang import ast
from repro.lang.cfront import c_to_program
from repro.lang.errors import CFrontError
from repro.lang.pretty import pretty


class TestTranslation:
    def test_function_and_params(self):
        program = c_to_program("int add(int a, int b) { return a + b; }")
        proc = program.procs["add"]
        assert proc.params == ("a", "b")
        assert isinstance(proc.body[0], ast.Return)

    def test_prototype_becomes_extern(self):
        program = c_to_program("int get_input(); void main() { int x = get_input(); }")
        assert "get_input" in program.externs

    def test_prototype_with_later_definition_not_extern(self):
        program = c_to_program(
            "int f(); int f() { return 1; } void main() { f(); }"
        )
        assert "f" not in program.externs
        assert "f" in program.procs

    def test_declarations_with_initializers(self):
        program = c_to_program("void f() { int x = 5; int y; }")
        body = program.procs["f"].body
        assert body[0].init.value == 5
        assert body[1].init is None

    def test_array_declaration(self):
        program = c_to_program("void f() { int a[8]; }")
        assert program.procs["f"].body[0].array_size == 8

    def test_compound_assignment(self):
        program = c_to_program("void f() { int x = 0; x += 3; }")
        assign = program.procs["f"].body[1]
        assert isinstance(assign.value, ast.Binary) and assign.value.op == "+"

    def test_increment_decrement(self):
        program = c_to_program("void f() { int x = 0; x++; --x; }")
        body = program.procs["f"].body
        assert body[1].value.op == "+"
        assert body[2].value.op == "-"

    def test_control_flow(self):
        program = c_to_program(
            """
            void f(int n) {
                int i;
                for (i = 0; i < n; i++) {
                    if (i % 2 == 0) { continue; }
                    while (i > 10) { break; }
                }
            }
            """
        )
        body = program.procs["f"].body
        assert isinstance(body[1], ast.For)

    def test_do_while(self):
        program = c_to_program("void f() { int i = 0; do { i++; } while (i < 3); }")
        body = program.procs["f"].body
        # Unrolled once, then a while.
        assert isinstance(body[-1], ast.While)

    def test_switch_with_breaks(self):
        program = c_to_program(
            """
            void f(int x) {
                switch (x) {
                case 1: x = 10; break;
                case 2: x = 20; break;
                default: x = 0;
                }
            }
            """
        )
        switch = program.procs["f"].body[0]
        assert isinstance(switch, ast.Switch)
        assert [c.value for c in switch.cases] == [1, 2]
        # trailing break stripped (RC arms do not fall through)
        assert all(
            not any(isinstance(s, ast.Break) for s in c.body) for c in switch.cases
        )

    def test_pointers(self):
        program = c_to_program(
            "void f() { int x = 1; int *p = &x; *p = 2; int y = *p; }"
        )
        body = program.procs["f"].body
        assert isinstance(body[1].init, ast.Unary) and body[1].init.op == "&"
        assert isinstance(body[2].target, ast.Unary) and body[2].target.op == "*"

    def test_struct_access(self):
        program = c_to_program(
            """
            struct msg { int kind; };
            void f(struct msg m, struct msg *p) {
                int a = m.kind;
                int b = p->kind;
            }
            """
        )
        body = program.procs["f"].body
        assert isinstance(body[0].init, ast.Field)
        arrow = body[1].init
        assert isinstance(arrow, ast.Field)
        assert isinstance(arrow.base, ast.Unary) and arrow.base.op == "*"

    def test_char_and_string_constants(self):
        program = c_to_program("void f() { send(out, 'x'); }")
        call = program.procs["f"].body[0]
        assert isinstance(call.args[1], ast.StrLit)

    def test_primitive_calls_pass_through(self):
        program = c_to_program(
            """
            void f() {
                int t = VS_toss(3);
                VS_assert(t >= 0);
                send(box, t);
                int v = recv(box);
                sem_p(lock);
                sem_v(lock);
            }
            """
        )
        assert "f" in program.procs
        # Primitives are not externs.
        assert not program.externs

    def test_cast_dropped(self):
        program = c_to_program("void f() { int x = (int) 5; }")
        assert program.procs["f"].body[0].init.value == 5

    def test_translated_output_prettyprints(self):
        program = c_to_program(
            "int g(); void main() { int x = g(); if (x) { x = 0; } }"
        )
        text = pretty(program)
        assert "proc main()" in text


class TestRejections:
    def test_global_variable_rejected(self):
        with pytest.raises(CFrontError):
            c_to_program("int global_state; void f() { }")

    def test_ternary_rejected(self):
        with pytest.raises(CFrontError):
            c_to_program("void f(int x) { int y = x ? 1 : 2; }")

    def test_varargs_rejected(self):
        with pytest.raises(CFrontError):
            c_to_program("void f(int x, ...) { }")

    def test_parse_error_wrapped(self):
        with pytest.raises(CFrontError):
            c_to_program("void f( {")

    def test_sizeof_rejected(self):
        with pytest.raises(CFrontError):
            c_to_program("void f() { int x = sizeof(int); }")


class TestEndToEnd:
    def test_c_program_closes_and_runs(self):
        from tests.helpers import single_process_behaviors

        from repro import close_program

        program = c_to_program(
            """
            int get_input();

            void main() {
                int x = get_input();
                int cnt = 0;
                while (cnt < 2) {
                    if (x % 2 == 0) { send(out, 1); } else { send(out, 0); }
                    cnt = cnt + 1;
                }
            }
            """
        )
        closed = close_program(program)
        traces = single_process_behaviors(closed.cfgs, "main")
        assert traces == {(1, 1), (1, 0), (0, 1), (0, 0)}
