"""Unit tests for AST helper functions."""


from repro.lang import ast
from repro.lang.parser import parse_expr, parse_program


class TestIsLvalue:
    def test_name(self):
        assert ast.is_lvalue(parse_expr("x"))

    def test_index_and_field(self):
        assert ast.is_lvalue(parse_expr("a[1]"))
        assert ast.is_lvalue(parse_expr("r.f"))
        assert ast.is_lvalue(parse_expr("a[1].f"))

    def test_deref(self):
        assert ast.is_lvalue(parse_expr("*p"))

    def test_non_lvalues(self):
        assert not ast.is_lvalue(parse_expr("1"))
        assert not ast.is_lvalue(parse_expr("x + 1"))
        assert not ast.is_lvalue(parse_expr("-x"))
        assert not ast.is_lvalue(parse_expr("f(x)"))


class TestExprNames:
    def test_simple(self):
        assert ast.expr_names(parse_expr("x + y * z")) == {"x", "y", "z"}

    def test_through_structures(self):
        assert ast.expr_names(parse_expr("a[i].f + *p")) == {"a", "i", "p"}

    def test_literals_have_no_names(self):
        assert ast.expr_names(parse_expr("1 + 2")) == set()
        assert ast.expr_names(parse_expr("'tag'")) == set()

    def test_call_arguments_included(self):
        assert ast.expr_names(parse_expr("f(x, g(y))")) == {"x", "y"}

    def test_duplicates_collapse(self):
        assert ast.expr_names(parse_expr("x + x * x")) == {"x"}


class TestWalkers:
    def test_walk_expr_preorder(self):
        expr = parse_expr("a + b * c")
        kinds = [type(node).__name__ for node in ast.walk_expr(expr)]
        assert kinds[0] == "Binary"  # the + comes first
        assert kinds.count("Name") == 3

    def test_walk_stmts_recurses_everywhere(self):
        program = parse_program(
            """
            proc main(x) {
                if (x == 1) {
                    while (true) { var a = 1; }
                } else {
                    switch (x) {
                    case 2: var b = 2;
                    default: var c = 3;
                    }
                }
                for (var i = 0; i < 2; i = i + 1) { var d = 4; }
            }
            """
        )
        stmts = list(ast.walk_stmts(program.procs["main"].body))
        decls = {s.name for s in stmts if isinstance(s, ast.VarDecl)}
        assert decls == {"a", "b", "c", "d", "i"}

    def test_walk_stmts_covers_for_header(self):
        program = parse_program(
            "proc main() { for (var i = 0; i < 2; i = i + 1) { } }"
        )
        stmts = list(ast.walk_stmts(program.procs["main"].body))
        assert any(isinstance(s, ast.Assign) for s in stmts)  # the step


class TestProgramApi:
    def test_proc_names(self):
        program = parse_program("proc a() { } proc b() { }")
        assert program.proc_names() == ["a", "b"]
