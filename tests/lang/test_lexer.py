"""Unit tests for the RC lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.value is not None]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT
        assert tokens[0].value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_identifier(self):
        tokens = tokenize("foo_bar1")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "foo_bar1"

    def test_identifier_with_leading_underscore(self):
        assert tokenize("_t0")[0].value == "_t0"

    def test_keywords_are_not_identifiers(self):
        for word, kind in [
            ("proc", TokenKind.PROC),
            ("var", TokenKind.VAR),
            ("if", TokenKind.IF),
            ("else", TokenKind.ELSE),
            ("while", TokenKind.WHILE),
            ("for", TokenKind.FOR),
            ("switch", TokenKind.SWITCH),
            ("case", TokenKind.CASE),
            ("default", TokenKind.DEFAULT),
            ("return", TokenKind.RETURN),
            ("exit", TokenKind.EXIT),
            ("break", TokenKind.BREAK),
            ("continue", TokenKind.CONTINUE),
            ("skip", TokenKind.SKIP),
            ("true", TokenKind.TRUE),
            ("false", TokenKind.FALSE),
            ("top", TokenKind.TOP),
            ("extern", TokenKind.EXTERN),
        ]:
            assert tokenize(word)[0].kind is kind, word

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("iffy")[0].kind is TokenKind.IDENT
        assert tokenize("procx")[0].kind is TokenKind.IDENT


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("== != <= >= && ||")[:-1] == [
            TokenKind.EQ,
            TokenKind.NE,
            TokenKind.LE,
            TokenKind.GE,
            TokenKind.AND,
            TokenKind.OR,
        ]

    def test_one_char_operators(self):
        assert kinds("+ - * / % & < > ! =")[:-1] == [
            TokenKind.PLUS,
            TokenKind.MINUS,
            TokenKind.STAR,
            TokenKind.SLASH,
            TokenKind.PERCENT,
            TokenKind.AMP,
            TokenKind.LT,
            TokenKind.GT,
            TokenKind.NOT,
            TokenKind.ASSIGN,
        ]

    def test_punctuation(self):
        assert kinds("( ) { } [ ] , ; : .")[:-1] == [
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.COMMA,
            TokenKind.SEMI,
            TokenKind.COLON,
            TokenKind.DOT,
        ]

    def test_adjacent_operators_split_greedily(self):
        # `<=` then `=` — not `<` `==`.
        assert kinds("<==")[:-1] == [TokenKind.LE, TokenKind.ASSIGN]


class TestStrings:
    def test_single_quoted(self):
        assert tokenize("'even'")[0].value == "even"

    def test_double_quoted(self):
        assert tokenize('"odd"')[0].value == "odd"

    def test_escapes(self):
        assert tokenize(r"'a\nb\tc\\d'")[0].value == "a\nb\tc\\d"

    def test_escaped_quote(self):
        assert tokenize(r"'don\'t'")[0].value == "don't"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'abc")

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize("'ab\ncd'")

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r"'\q'")


class TestComments:
    def test_line_comment(self):
        assert values("x // comment\ny") == ["x", "y"]

    def test_block_comment(self):
        assert values("a /* b c */ d") == ["a", "d"]

    def test_multiline_block_comment(self):
        assert values("a /* b\nc\nd */ e") == ["a", "e"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* b")

    def test_comment_does_not_nest(self):
        # The first */ ends the comment.
        assert values("a /* x /* y */ b") == ["a", "b"]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_columns_advance_within_line(self):
        tokens = tokenize("ab cd")
        assert tokens[1].location.column == 4


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_digit_then_letter_rejected(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_error_carries_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.location.line == 2
