"""Pretty-printer tests, including the parse∘pretty round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import ast
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import pretty, pretty_expr


class TestExprPrinting:
    def test_minimal_parentheses_precedence(self):
        assert pretty_expr(parse_expr("1 + 2 * 3")) == "1 + 2 * 3"
        assert pretty_expr(parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"

    def test_left_assoc_no_parens(self):
        assert pretty_expr(parse_expr("a - b - c")) == "a - b - c"

    def test_right_nested_keeps_parens(self):
        assert pretty_expr(parse_expr("a - (b - c)")) == "a - (b - c)"

    def test_unary_inside_binary(self):
        assert pretty_expr(parse_expr("-x + 1")) == "-x + 1"

    def test_boolean_structure(self):
        assert pretty_expr(parse_expr("a && (b || c)")) == "a && (b || c)"
        assert pretty_expr(parse_expr("(a && b) || c")) == "a && b || c"

    def test_string_escaping(self):
        printed = pretty_expr(ast.StrLit("a'b\nc"))
        assert printed == "'a\\'b\\nc'"
        reparsed = parse_expr(printed)
        assert reparsed.value == "a'b\nc"

    def test_index_field_chain(self):
        assert pretty_expr(parse_expr("a[1].f[2]")) == "a[1].f[2]"

    def test_top_literal(self):
        assert pretty_expr(ast.AbstractLit()) == "top"

    def test_deref_and_address(self):
        assert pretty_expr(parse_expr("*p + 1")) == "*p + 1"
        assert pretty_expr(parse_expr("&x")) == "&x"


SAMPLE_PROGRAMS = [
    "proc main() {\n    skip;\n}\n",
    """
extern proc env();

proc main(n) {
    var x;
    x = env();
    var i = 0;
    while (i < n) {
        if (x % 2 == 0) {
            send(out, 'even');
        } else {
            send(out, 'odd');
        }
        i = i + 1;
    }
    return;
}
""",
    """
proc dispatch(kind) {
    switch (kind) {
    case 0:
        send(a, 1);
    case 'str':
        send(b, 2);
    default:
        exit;
    }
}
""",
    """
proc loops() {
    for (var i = 0; i < 3; i = i + 1) {
        if (i == 1) {
            continue;
        }
        if (i == 2) {
            break;
        }
    }
}
""",
    """
proc pointers() {
    var x = 1;
    var p = &x;
    *p = 2;
    var y = *p;
    var a[4];
    a[0] = y;
    var r;
    r = record();
    r.field = a[0];
}
""",
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", SAMPLE_PROGRAMS)
    def test_parse_pretty_fixpoint(self, source):
        """pretty(parse(s)) is a fixpoint: reprinting the reparse is stable."""
        program = parse_program(source)
        printed = pretty(program)
        reparsed = parse_program(printed)
        assert pretty(reparsed) == printed

    def test_extern_survives_round_trip(self):
        program = parse_program("extern proc env(a, b); proc m() { }")
        printed = pretty(program)
        reparsed = parse_program(printed)
        assert reparsed.externs["env"].params == ("a", "b")


# A hypothesis strategy for expressions, built bottom-up.
_names = st.sampled_from(["x", "y", "cnt", "msg"])
_leaves = st.one_of(
    st.integers(min_value=0, max_value=999).map(ast.IntLit),
    st.booleans().map(ast.BoolLit),
    _names.map(ast.Name),
    st.sampled_from(["even", "odd", "setup"]).map(ast.StrLit),
)


def _exprs(children):
    binary = st.builds(
        lambda op, l, r: ast.Binary(op, l, r),
        st.sampled_from(["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]),
        children,
        children,
    )
    unary = st.builds(
        lambda op, e: ast.Unary(op, e), st.sampled_from(["-", "!"]), children
    )
    index = st.builds(lambda b, i: ast.Index(b, i), _names.map(ast.Name), children)
    field = st.builds(lambda b: ast.Field(b, "f"), _names.map(ast.Name))
    return st.one_of(binary, unary, index, field)


expr_strategy = st.recursive(_leaves, _exprs, max_leaves=25)


class TestExprRoundTripProperty:
    @given(expr_strategy)
    @settings(max_examples=300, deadline=None)
    def test_pretty_then_parse_is_identity_modulo_location(self, expr):
        printed = pretty_expr(expr)
        reparsed = parse_expr(printed)
        assert _strip(reparsed) == _strip(expr)


def _strip(expr):
    """Structural comparison ignoring source locations."""
    if isinstance(expr, ast.IntLit):
        return ("int", expr.value)
    if isinstance(expr, ast.BoolLit):
        return ("bool", expr.value)
    if isinstance(expr, ast.StrLit):
        return ("str", expr.value)
    if isinstance(expr, ast.AbstractLit):
        return ("top",)
    if isinstance(expr, ast.Name):
        return ("name", expr.ident)
    if isinstance(expr, ast.Unary):
        return ("unary", expr.op, _strip(expr.operand))
    if isinstance(expr, ast.Binary):
        return ("binary", expr.op, _strip(expr.left), _strip(expr.right))
    if isinstance(expr, ast.Index):
        return ("index", _strip(expr.base), _strip(expr.index))
    if isinstance(expr, ast.Field):
        return ("field", _strip(expr.base), expr.field)
    if isinstance(expr, ast.CallExpr):
        return ("call", expr.callee, tuple(_strip(a) for a in expr.args))
    raise AssertionError(type(expr))
