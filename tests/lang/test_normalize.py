"""Tests for normalization to core form."""

import pytest

from repro.lang import ast
from repro.lang.errors import NormalizationError
from repro.lang.normalize import normalize_program
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty


def norm(source):
    return normalize_program(parse_program(source))


def main_body(source):
    return norm(source).procs["main"].body


def all_stmts(source):
    return list(ast.walk_stmts(norm(source).procs["main"].body))


class TestCallHoisting:
    def test_call_in_expression_is_hoisted(self):
        body = main_body("proc main() { var x = f() + 1; } proc f() { return 2; }")
        # var _t0; _t0 = f(); var x = _t0 + 1;
        kinds = [type(s).__name__ for s in body]
        assert kinds == ["VarDecl", "CallStmt", "VarDecl"]
        call = body[1]
        assert call.callee == "f"

    def test_nested_calls_hoisted_in_order(self):
        body = main_body(
            "proc main() { var x = f(g()); } proc f(a) { return a; } proc g() { return 1; }"
        )
        calls = [s for s in body if isinstance(s, ast.CallStmt)]
        assert [c.callee for c in calls] == ["g", "f"]

    def test_complex_call_argument_atomized(self):
        body = main_body("proc main() { var a = 1; f(a + 2); } proc f(x) { }")
        call = next(s for s in body if isinstance(s, ast.CallStmt))
        assert all(
            isinstance(arg, (ast.Name, ast.IntLit, ast.BoolLit, ast.StrLit))
            for arg in call.args
        )

    def test_simple_arguments_left_alone(self):
        body = main_body("proc main() { var a = 1; f(a, 2, 'tag'); } proc f(x, y, z) { }")
        call = next(s for s in body if isinstance(s, ast.CallStmt))
        assert isinstance(call.args[0], ast.Name)
        assert isinstance(call.args[1], ast.IntLit)
        assert isinstance(call.args[2], ast.StrLit)

    def test_address_of_argument_preserved(self):
        body = main_body("proc main() { var a = 1; f(&a); } proc f(p) { }")
        call = next(s for s in body if isinstance(s, ast.CallStmt))
        assert isinstance(call.args[0], ast.Unary) and call.args[0].op == "&"

    def test_assignment_from_call_becomes_call_stmt(self):
        body = main_body("proc main() { var x; x = f(); } proc f() { return 1; }")
        assert isinstance(body[1], ast.CallStmt)
        assert isinstance(body[1].result, ast.Name)

    def test_call_in_while_guard_reevaluated(self):
        body = main_body(
            "proc main() { while (f() > 0) { skip; } } proc f() { return 0; }"
        )
        loop = body[0]
        assert isinstance(loop, ast.While)
        # Guard became `true`; the call and test moved into the body.
        assert isinstance(loop.cond, ast.BoolLit) and loop.cond.value is True
        inner = [type(s).__name__ for s in loop.body]
        assert "CallStmt" in inner and "If" in inner


class TestForDesugaring:
    def test_for_becomes_while(self):
        body = main_body("proc main() { for (var i = 0; i < 3; i = i + 1) { skip; } }")
        kinds = [type(s).__name__ for s in body]
        assert "For" not in kinds
        assert "While" in kinds

    def test_for_without_cond_uses_true(self):
        body = main_body("proc main() { for (;;) { break; } }")
        loop = next(s for s in body if isinstance(s, ast.While))
        assert isinstance(loop.cond, ast.BoolLit)

    def test_continue_in_for_runs_step(self):
        stmts = all_stmts(
            """
            proc main() {
                for (var i = 0; i < 3; i = i + 1) {
                    if (i == 1) { continue; }
                    send(out, i);
                }
            }
            """
        )
        # The continue must be preceded by the injected step assignment.
        continues = [s for s in stmts if isinstance(s, ast.Continue)]
        assert continues
        ifs = [s for s in stmts if isinstance(s, ast.If)]
        then_with_continue = next(
            s.then_body for s in ifs if any(isinstance(t, ast.Continue) for t in s.then_body)
        )
        assert isinstance(then_with_continue[0], ast.Assign)
        assert isinstance(then_with_continue[1], ast.Continue)

    def test_for_scope_does_not_leak(self):
        with pytest.raises(NormalizationError):
            norm("proc main() { for (var i = 0; i < 3; i = i + 1) { } send(out, i); }")


class TestScoping:
    def test_undeclared_variable_rejected(self):
        with pytest.raises(NormalizationError):
            norm("proc main() { x = 1; }")

    def test_undeclared_in_expression_rejected(self):
        with pytest.raises(NormalizationError):
            norm("proc main() { var x = y + 1; }")

    def test_params_are_in_scope(self):
        norm("proc main(a, b) { var x = a + b; }")

    def test_shadowing_renamed_apart(self):
        program = norm(
            """
            proc main() {
                var x = 1;
                if (x == 1) {
                    var x = 2;
                    send(out, x);
                }
                send(out, x);
            }
            """
        )
        stmts = list(ast.walk_stmts(program.procs["main"].body))
        sends = [s for s in stmts if isinstance(s, ast.CallStmt)]
        inner_arg = sends[0].args[1]
        outer_arg = sends[1].args[1]
        assert isinstance(inner_arg, ast.Name) and isinstance(outer_arg, ast.Name)
        assert inner_arg.ident != outer_arg.ident

    def test_block_scope_ends(self):
        with pytest.raises(NormalizationError):
            norm("proc main() { if (true) { var x = 1; } send(out, x); }")

    def test_undeclared_callee_rejected(self):
        with pytest.raises(NormalizationError):
            norm("proc main() { mystery(); }")

    def test_extern_callee_accepted(self):
        norm("extern proc env(); proc main() { var x; x = env(); }")

    def test_builtin_callees_accepted(self):
        norm(
            """
            proc main() {
                var c;
                c = channel('ch');
                send(c, 1);
                var v;
                v = recv(c);
                sem_p(s);
                sem_v(s);
                write(sv, 1);
                var w;
                w = read(sv);
                VS_assert(true);
                var t;
                t = VS_toss(3);
                var r;
                r = record();
            }
            """
        )


class TestObjectArguments:
    def test_bare_object_name_becomes_string(self):
        program = norm("proc main() { send(box, 1); }")
        stmts = list(ast.walk_stmts(program.procs["main"].body))
        send = next(s for s in stmts if isinstance(s, ast.CallStmt))
        assert isinstance(send.args[0], ast.StrLit)
        assert send.args[0].value == "box"

    def test_local_variable_object_arg_stays_variable(self):
        program = norm(
            "proc main() { var box; box = channel('real'); send(box, 1); }"
        )
        stmts = list(ast.walk_stmts(program.procs["main"].body))
        send = next(
            s for s in stmts if isinstance(s, ast.CallStmt) and s.callee == "send"
        )
        assert isinstance(send.args[0], ast.Name)

    def test_object_param_stays_variable(self):
        program = norm("proc main(box) { send(box, 1); }")
        stmts = list(ast.walk_stmts(program.procs["main"].body))
        send = next(s for s in stmts if isinstance(s, ast.CallStmt))
        assert isinstance(send.args[0], ast.Name)


class TestIdempotence:
    def test_normalize_is_idempotent(self):
        source = """
        extern proc env();
        proc helper(a) { return a * 2; }
        proc main() {
            var x = helper(3) + 1;
            for (var i = 0; i < x; i = i + 1) {
                if (i % 2 == 0) { continue; }
                send(out, i);
            }
        }
        """
        once = normalize_program(parse_program(source))
        twice = normalize_program(parse_program(pretty(once)))
        assert pretty(twice) == pretty(once)
