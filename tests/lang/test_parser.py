"""Unit tests for the RC parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_expr, parse_program


def first_proc(source):
    program = parse_program(source)
    return next(iter(program.procs.values()))


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.Binary) and expr.op == "+"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"

    def test_precedence_comparison_over_and(self):
        expr = parse_expr("a < b && c > d")
        assert isinstance(expr, ast.Binary) and expr.op == "&&"
        assert expr.left.op == "<"
        assert expr.right.op == ">"

    def test_or_binds_loosest(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"
        assert isinstance(expr.right, ast.Name) and expr.right.ident == "c"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expr("-x + 1")
        assert expr.op == "+"
        assert isinstance(expr.left, ast.Unary) and expr.left.op == "-"

    def test_unary_not(self):
        expr = parse_expr("!done")
        assert isinstance(expr, ast.Unary) and expr.op == "!"

    def test_address_of(self):
        expr = parse_expr("&x")
        assert isinstance(expr, ast.Unary) and expr.op == "&"

    def test_address_of_requires_lvalue(self):
        with pytest.raises(ParseError):
            parse_expr("&(1 + 2)")

    def test_deref(self):
        expr = parse_expr("*p")
        assert isinstance(expr, ast.Unary) and expr.op == "*"

    def test_double_deref(self):
        expr = parse_expr("**pp")
        assert expr.op == "*"
        assert expr.operand.op == "*"

    def test_index(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.index, ast.Binary)

    def test_nested_index(self):
        expr = parse_expr("a[0][1]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_field(self):
        expr = parse_expr("msg.kind")
        assert isinstance(expr, ast.Field)
        assert expr.field == "kind"

    def test_chained_field(self):
        expr = parse_expr("a.b.c")
        assert expr.field == "c"
        assert expr.base.field == "b"

    def test_call_expr(self):
        expr = parse_expr("f(1, x)")
        assert isinstance(expr, ast.CallExpr)
        assert expr.callee == "f"
        assert len(expr.args) == 2

    def test_literals(self):
        assert parse_expr("true").value is True
        assert parse_expr("false").value is False
        assert isinstance(parse_expr("top"), ast.AbstractLit)
        assert parse_expr("'tag'").value == "tag"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("1 + 2 )")


class TestStatements:
    def test_var_decl_plain(self):
        proc = first_proc("proc m() { var x; }")
        decl = proc.body[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.init is None and decl.array_size is None

    def test_var_decl_with_init(self):
        proc = first_proc("proc m() { var x = 1 + 2; }")
        assert isinstance(proc.body[0].init, ast.Binary)

    def test_array_decl(self):
        proc = first_proc("proc m() { var a[10]; }")
        assert proc.body[0].array_size == 10

    def test_array_decl_zero_size_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc m() { var a[0]; }")

    def test_array_decl_with_init_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc m() { var a[3] = 1; }")

    def test_assignment(self):
        proc = first_proc("proc m() { var x; x = 5; }")
        assign = proc.body[1]
        assert isinstance(assign, ast.Assign)

    def test_assignment_to_deref(self):
        proc = first_proc("proc m() { var x; var p = &x; *p = 1; }")
        assign = proc.body[2]
        assert isinstance(assign.target, ast.Unary)

    def test_assignment_to_non_lvalue_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc m() { 1 + 2 = 3; }")

    def test_call_statement(self):
        proc = first_proc("proc m() { f(); } proc f() { }")
        call = proc.body[0]
        assert isinstance(call, ast.CallStmt)
        assert call.result is None

    def test_call_with_result(self):
        proc = first_proc("proc m() { var x; x = f(); } proc f() { return 1; }")
        call = proc.body[1]
        assert isinstance(call, ast.CallStmt)
        assert isinstance(call.result, ast.Name)

    def test_bare_expression_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc m() { x + 1; }")

    def test_if_else(self):
        proc = first_proc("proc m() { if (true) { skip; } else { exit; } }")
        stmt = proc.body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.Exit)

    def test_else_if_chain(self):
        proc = first_proc(
            "proc m(x) { if (x == 1) { skip; } else if (x == 2) { skip; } else { skip; } }"
        )
        stmt = proc.body[0]
        inner = stmt.else_body[0]
        assert isinstance(inner, ast.If)
        assert inner.else_body

    def test_while(self):
        proc = first_proc("proc m() { while (true) { skip; } }")
        assert isinstance(proc.body[0], ast.While)

    def test_for_full(self):
        proc = first_proc("proc m() { for (var i = 0; i < 3; i = i + 1) { skip; } }")
        stmt = proc.body[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.cond is not None and stmt.step is not None

    def test_for_empty_clauses(self):
        proc = first_proc("proc m() { for (;;) { break; } }")
        stmt = proc.body[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_switch(self):
        proc = first_proc(
            """
            proc m(x) {
                switch (x) {
                case 1: skip;
                case 'tag': skip;
                case -2: skip;
                default: exit;
                }
            }
            """
        )
        stmt = proc.body[0]
        assert isinstance(stmt, ast.Switch)
        assert [c.value for c in stmt.cases] == [1, "tag", -2]
        assert isinstance(stmt.default[0], ast.Exit)

    def test_switch_duplicate_case_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc m(x) { switch (x) { case 1: skip; case 1: skip; } }")

    def test_switch_duplicate_default_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "proc m(x) { switch (x) { default: skip; default: skip; } }"
            )

    def test_switch_case_after_default_rejected(self):
        with pytest.raises(ParseError):
            parse_program(
                "proc m(x) { switch (x) { default: skip; case 1: skip; } }"
            )

    def test_return_with_and_without_value(self):
        proc = first_proc("proc m(x) { if (x == 0) { return; } return x; }")
        assert proc.body[0].then_body[0].value is None
        assert isinstance(proc.body[1].value, ast.Name)

    def test_break_continue(self):
        proc = first_proc("proc m() { while (true) { break; continue; } }")
        body = proc.body[0].body
        assert isinstance(body[0], ast.Break)
        assert isinstance(body[1], ast.Continue)


class TestTopLevel:
    def test_multiple_procs(self):
        program = parse_program("proc a() { } proc b(x, y) { }")
        assert list(program.procs) == ["a", "b"]
        assert program.procs["b"].params == ("x", "y")

    def test_extern_decl(self):
        program = parse_program("extern proc env(a); proc m() { }")
        assert "env" in program.externs
        assert program.externs["env"].params == ("a",)

    def test_duplicate_proc_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc a() { } proc a() { }")

    def test_duplicate_extern_vs_proc_rejected(self):
        with pytest.raises(ParseError):
            parse_program("extern proc a(); proc a() { }")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_program("proc a(x, x) { }")

    def test_missing_brace_reports_location(self):
        with pytest.raises(ParseError):
            parse_program("proc a() { skip;")

    def test_empty_program(self):
        program = parse_program("")
        assert program.procs == {}
