"""Hypothesis fuzzing of the front end: no input may crash the tools
with anything but a LangError, and several semantic oracles."""

from hypothesis import given, settings, strategies as st

from repro.lang.errors import LangError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program


class TestLexerRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            tokenize(text)
        except LangError:
            pass

    @given(st.text(alphabet="(){}[];,.+-*/%&|!<>= \n\t'\"abc_019", max_size=100))
    @settings(max_examples=300, deadline=None)
    def test_operator_soup_never_crashes(self, text):
        try:
            tokenize(text)
        except LangError:
            pass


class TestParserRobustness:
    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_program(text)
        except LangError:
            pass

    @given(
        st.lists(
            st.sampled_from(
                [
                    "proc", "var", "if", "else", "while", "return", "(", ")",
                    "{", "}", ";", "=", "x", "1", "+", "send", ",", "'tag'",
                ]
            ),
            max_size=30,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_token_soup_never_crashes(self, tokens):
        try:
            parse_program(" ".join(tokens))
        except LangError:
            pass


# --- arithmetic oracle -------------------------------------------------------


def c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a, b):
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


@st.composite
def arith_exprs(draw, depth=0):
    """(expression text, python value) pairs with C division semantics."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=-50, max_value=50))
        if value < 0:
            return f"(0 - {-value})", value
        return str(value), value
    op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
    left_text, left = draw(arith_exprs(depth + 1))
    right_text, right = draw(arith_exprs(depth + 1))
    if op in ("/", "%") and right == 0:
        op = "+"
    if op == "+":
        return f"({left_text} + {right_text})", left + right
    if op == "-":
        return f"({left_text} - {right_text})", left - right
    if op == "*":
        return f"({left_text} * {right_text})", left * right
    if op == "/":
        return f"({left_text} / {right_text})", c_div(left, right)
    return f"({left_text} % {right_text})", c_mod(left, right)


class TestInterpreterArithmeticOracle:
    @given(arith_exprs())
    @settings(max_examples=300, deadline=None)
    def test_expression_evaluation_matches_c_semantics(self, pair):
        from tests.helpers import outputs_of, run_single

        text, expected = pair
        run = run_single(f"proc main() {{ send(out, {text}); }}")
        assert outputs_of(run) == [expected]


@st.composite
def comparison_exprs(draw):
    a = draw(st.integers(min_value=-20, max_value=20))
    b = draw(st.integers(min_value=-20, max_value=20))
    op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    result = {
        "==": a == b,
        "!=": a != b,
        "<": a < b,
        "<=": a <= b,
        ">": a > b,
        ">=": a >= b,
    }[op]
    a_text = f"(0 - {-a})" if a < 0 else str(a)
    b_text = f"(0 - {-b})" if b < 0 else str(b)
    return f"{a_text} {op} {b_text}", result


class TestComparisonOracle:
    @given(comparison_exprs())
    @settings(max_examples=200, deadline=None)
    def test_comparisons(self, pair):
        from tests.helpers import outputs_of, run_single

        text, expected = pair
        run = run_single(
            f"proc main() {{ if ({text}) {{ send(out, 1); }} else {{ send(out, 0); }} }}"
        )
        assert outputs_of(run) == [1 if expected else 0]
