"""Shared builders for the exploration-service tests."""

import pytest

from repro import System, close_program

FIG3_SRC = """
proc q(x) {
    var cnt = 0;
    var odds = 0;
    while (cnt < 3) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); odds = odds + 1; }
        VS_assert(odds < 2);
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""

#: The stats fields that legitimately differ between scheduling regimes:
#: identity/configuration, the backtracking-cost group and the stealing
#: counters themselves.  Everything else must match counter-for-counter.
NON_PARITY_FIELDS = {
    "strategy",
    "backtrack",
    "replays",
    "replayed_transitions",
    "restores",
    "undo_entries",
    "checkpoint_memory_bytes",
    "wall_time",
    "cpu_time",
    "jobs",
    "prefixes",
    "leases",
    "steals",
    "leases_requeued",
}


def fig3_system(engine_probe=False):
    closed = close_program(FIG3_SRC, env_params={"q": ["x"]})
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", "q", [])
    return system


def racing_system():
    """Two producers racing into one consumer: scheduling nondeterminism
    (exercises schedule points, not just toss points)."""
    src = """
    proc producer(id) { send(c, id); }
    proc consumer() { var a; var b; a = recv(c); b = recv(c); send(out, a * 10 + b); }
    """
    system = System(src)
    system.add_env_sink("out")
    system.add_channel("c", capacity=1)
    system.add_process("p1", "producer", [1])
    system.add_process("p2", "producer", [2])
    system.add_process("con", "consumer", [])
    return system


def deadlock_system():
    src = """
    proc grab(first, second) {
        sem_p(first);
        sem_p(second);
        sem_v(second);
        sem_v(first);
    }
    """
    system = System(src)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


def toss_loop_system(rounds=10):
    """2**rounds paths of pure toss nondeterminism — big enough that a
    stop request lands mid-search."""
    src = f"""
    proc main() {{
        var i = 0;
        while (i < {rounds}) {{
            var t;
            t = VS_toss(1);
            i = i + 1;
        }}
        send(out, i);
    }}
    """
    system = System(src)
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def assert_report_parity(actual, expected, *, check_distinct=True):
    """Counter-for-counter report equality modulo NON_PARITY_FIELDS."""
    a = {
        k: v for k, v in actual.stats.as_dict().items() if k not in NON_PARITY_FIELDS
    }
    b = {
        k: v
        for k, v in expected.stats.as_dict().items()
        if k not in NON_PARITY_FIELDS
    }
    assert a == b, {
        key: (a.get(key), b.get(key))
        for key in set(a) | set(b)
        if a.get(key) != b.get(key)
    }
    if check_distinct:
        assert actual.distinct_states == expected.distinct_states
    assert [e.trace.choices for e in actual.all_events()] == [
        e.trace.choices for e in expected.all_events()
    ]
    assert sorted(g.signature for g in actual.triage()) == sorted(
        g.signature for g in expected.triage()
    )


@pytest.fixture()
def fig3():
    return fig3_system()
