"""The frontier checkpoint format: round-trips, versioning, resume.

The contract (docs/service.md): a suspended search serialized to JSON
and resumed — in another process, on either execution engine — must
finish with a report identical to the uninterrupted run.
"""

import json

import pytest

from repro import SearchOptions, run_search
from repro.service import (
    FRONTIER_FORMAT,
    FRONTIER_VERSION,
    FrontierFormatError,
    SearchCheckpoint,
    load_frontier,
    prefix_from_json,
    prefix_to_json,
    report_from_json,
    report_to_json,
    save_frontier,
    work_stealing_search,
)
from repro.service.frontier import canonical_fingerprint

from .conftest import assert_report_parity, fig3_system, racing_system


def _suspended_checkpoint(system, paths_before_stop=2, **options):
    """Run the steal scheduler until a few paths complete, then suspend."""
    calls = [0]

    def stop_soon():
        calls[0] += 1
        return calls[0] >= paths_before_stop

    report = work_stealing_search(
        system,
        SearchOptions(
            strategy="parallel", scheduler="steal", jobs=1, **options
        ),
        should_suspend=stop_soon,
    )
    assert report.incomplete
    assert report.checkpoint is not None
    return report.checkpoint


class TestPrefixCodec:
    def test_round_trip_preserves_every_point(self):
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        pending = [p for p in checkpoint.pending if p is not None]
        assert pending, "suspension should leave residual prefixes"
        for prefix in pending:
            assert prefix_from_json(prefix_to_json(prefix)) == prefix

    def test_schedule_points_round_trip_por_context(self):
        # The racing system has genuine schedule points whose sleep
        # sets and sibling signatures must survive serialization.
        checkpoint = _suspended_checkpoint(racing_system(), max_depth=30)
        pending = [p for p in checkpoint.pending if p is not None]
        assert any(
            point.kind == "schedule" for p in pending for point in p.points
        )
        for prefix in pending:
            again = prefix_from_json(json.loads(json.dumps(prefix_to_json(prefix))))
            assert again == prefix

    def test_json_document_is_plain_data(self):
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        doc = checkpoint.to_json()
        # Must survive an actual JSON round trip, not just repr equality.
        assert json.loads(json.dumps(doc)) == doc


class TestReportCodec:
    def test_round_trip_counters_events_stats(self):
        report = run_search(
            fig3_system(), SearchOptions(strategy="dfs", max_depth=40)
        )
        again = report_from_json(report_to_json(report))
        assert again.states_visited == report.states_visited
        assert again.transitions_executed == report.transitions_executed
        assert again.paths_explored == report.paths_explored
        assert [e.trace.choices for e in again.all_events()] == [
            e.trace.choices for e in report.all_events()
        ]
        assert again.stats.as_dict() == report.stats.as_dict()


class TestCheckpointDocument:
    def test_version_policy_unknown_version_rejected(self):
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        doc = checkpoint.to_json()
        assert doc["format"] == FRONTIER_FORMAT
        assert doc["version"] == FRONTIER_VERSION
        doc["version"] = FRONTIER_VERSION + 1
        with pytest.raises(FrontierFormatError):
            SearchCheckpoint.from_json(doc)

    def test_unknown_format_rejected(self):
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        doc = checkpoint.to_json()
        doc["format"] = "something-else"
        with pytest.raises(FrontierFormatError):
            SearchCheckpoint.from_json(doc)

    def test_unknown_keys_ignored(self):
        # Forward compatibility: same-version documents may grow keys.
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        doc = checkpoint.to_json()
        doc["experimental_extra"] = {"x": 1}
        SearchCheckpoint.from_json(doc)

    def test_check_system_rejects_mismatched_fingerprint(self):
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        with pytest.raises(FrontierFormatError):
            checkpoint.check_system(racing_system())

    def test_save_load_round_trip(self, tmp_path):
        checkpoint = _suspended_checkpoint(fig3_system(), max_depth=40)
        path = tmp_path / "frontier.json"
        save_frontier(path, checkpoint)
        assert not (tmp_path / "frontier.json.tmp").exists()
        again = load_frontier(path)
        assert again.fingerprint == checkpoint.fingerprint
        assert again.pending == checkpoint.pending
        assert sorted(again.fingerprints) == sorted(checkpoint.fingerprints)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "frontier.json"
        path.write_text("not json {")
        with pytest.raises(FrontierFormatError):
            load_frontier(path)


class TestCanonicalFingerprint:
    def test_injective_on_distinct_states(self):
        values = [(1, (2, 3)), (1, (2, 4)), ("1", (2, 3)), (1, 2, 3)]
        assert len({canonical_fingerprint(v) for v in values}) == len(values)


class TestResumeParity:
    """Satellite contract: checkpoint -> serialize -> resume finishes
    with a report identical to the uninterrupted run, on both engines."""

    @pytest.mark.parametrize("engine", ["walk", "compiled"])
    def test_suspend_serialize_resume_identical(self, tmp_path, engine):
        base = run_search(
            fig3_system(),
            SearchOptions(
                strategy="dfs", engine=engine, count_states=True, max_depth=40
            ),
        )
        checkpoint = _suspended_checkpoint(
            fig3_system(), count_states=True, engine=engine, max_depth=40
        )
        path = tmp_path / "frontier.json"
        save_frontier(path, checkpoint)
        resumed = work_stealing_search(
            fig3_system(),
            SearchOptions(
                strategy="parallel",
                scheduler="steal",
                jobs=1,
                engine=engine,
                count_states=True,
                max_depth=40,
            ),
            initial=load_frontier(path),
        )
        assert not resumed.incomplete
        assert resumed.checkpoint is None
        assert_report_parity(resumed, base)

    def test_resume_twice_through_two_checkpoints(self, tmp_path):
        # Stop, resume, stop again, resume again: the final report must
        # still match the straight-through search.
        base = run_search(
            fig3_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=40),
        )
        options = dict(
            strategy="parallel",
            scheduler="steal",
            jobs=1,
            count_states=True,
            max_depth=40,
        )
        first = _suspended_checkpoint(fig3_system(), count_states=True, max_depth=40)
        save_frontier(tmp_path / "a.json", first)

        calls = [0]

        def stop_again():
            calls[0] += 1
            return calls[0] >= 2

        middle = work_stealing_search(
            fig3_system(),
            SearchOptions(**options),
            initial=load_frontier(tmp_path / "a.json"),
            should_suspend=stop_again,
        )
        if middle.checkpoint is None:
            # The remaining work fit before the second stop fired;
            # the single-checkpoint test already covers this shape.
            assert_report_parity(middle, base)
            return
        save_frontier(tmp_path / "b.json", middle.checkpoint)
        final = work_stealing_search(
            fig3_system(),
            SearchOptions(**options),
            initial=load_frontier(tmp_path / "b.json"),
        )
        assert final.checkpoint is None
        assert_report_parity(final, base)
