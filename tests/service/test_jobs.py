"""The job service: submit, serve, stream, stop, resume — on disk.

Jobs are self-contained (description + embedded program source), so
every test round-trips through fresh :class:`JobStore` instances to
prove nothing leaks through in-memory state.
"""

import json
import threading
import time

import pytest

from repro import SearchOptions, run_search
from repro.service import JobStore
from repro.service.jobs import run_job, serve

from .conftest import FIG3_SRC

FIG3_DESCRIPTION = {
    "program": "fig3.rc",
    "close": {"env_params": {"q": ["x"]}},
    "objects": [{"kind": "sink", "name": "out"}],
    "processes": [{"name": "P", "proc": "q", "args": []}],
}

TOSS_LOOP_SRC = """
proc main() {
    var i = 0;
    while (i < 10) {
        var t;
        t = VS_toss(1);
        i = i + 1;
    }
    send(out, i);
}
"""

TOSS_LOOP_DESCRIPTION = {
    "program": "loop.rc",
    "objects": [{"kind": "sink", "name": "out"}],
    "processes": [{"name": "p", "proc": "main", "args": []}],
}


def _options(**kwargs):
    kwargs.setdefault("count_states", True)
    kwargs.setdefault("max_depth", 60)
    kwargs.setdefault("jobs", 1)
    return SearchOptions(strategy="parallel", scheduler="steal", **kwargs)


def _submit_fig3(store, **options):
    return store.submit(
        FIG3_DESCRIPTION, _options(**options), program_source=FIG3_SRC, name="fig3"
    )


class TestJobStore:
    def test_submit_is_self_contained_and_queued(self, tmp_path):
        store = JobStore(tmp_path)
        job = _submit_fig3(store)
        assert job.state == "queued"
        # A brand-new store instance sees the same job from disk alone.
        again = JobStore(tmp_path).get(job.id)
        assert again.state == "queued"
        assert again.system["program_source"] == FIG3_SRC
        assert again.search_options().scheduler == "steal"

    def test_submit_embeds_program_from_base_dir(self, tmp_path):
        (tmp_path / "fig3.rc").write_text(FIG3_SRC)
        store = JobStore(tmp_path / "jobs")
        job = store.submit(FIG3_DESCRIPTION, _options(), base_dir=tmp_path)
        assert job.system["program_source"] == FIG3_SRC

    def test_get_unknown_job_raises(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(tmp_path).get("job-missing")

    def test_claim_is_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        _submit_fig3(store)
        first = store.claim_next()
        assert first is not None
        assert JobStore(tmp_path).claim_next() is None

    def test_resume_requires_stopped_or_failed(self, tmp_path):
        store = JobStore(tmp_path)
        job = _submit_fig3(store)
        with pytest.raises(ValueError):
            store.resume(job.id)


class TestJobLifecycle:
    def test_serve_once_completes_job_with_artifacts(self, tmp_path):
        store = JobStore(tmp_path)
        job = _submit_fig3(store)
        assert serve(store, once=True) == 1
        job = store.get(job.id)
        assert job.state == "done"
        result = json.loads(job.result_path.read_text())
        assert result["ok"] is False
        assert result["stats"]["paths_explored"] == 8
        assert result["groups"] == [{"kind": "assertion", "count": 5}]
        manifest = json.loads(job.manifest_path.read_text())
        assert manifest["report"]["stats"]["leases"] >= 1
        assert manifest["report"]["workers"] is not None
        assert manifest["job"]["id"] == job.id
        traces = sorted(p.name for p in job.traces_dir.iterdir())
        assert len(traces) == 5
        assert not job.frontier_path.exists()
        beat = job.latest_stats()
        assert beat["state"] == "final"

    def test_result_matches_direct_search(self, tmp_path):
        from repro import System

        store = JobStore(tmp_path)
        job = _submit_fig3(store)
        serve(store, once=True)
        result = json.loads(store.get(job.id).result_path.read_text())

        system = store.get(job.id).build_system()
        assert isinstance(system, System)
        base = run_search(
            system, SearchOptions(strategy="dfs", count_states=True, max_depth=60)
        )
        for field in ("paths_explored", "states_visited", "transitions_executed"):
            assert result["stats"][field] == getattr(base.stats, field)

    def test_saved_traces_replay(self, tmp_path):
        from repro.counterex import load_trace, verify_trace

        store = JobStore(tmp_path)
        job = _submit_fig3(store)
        serve(store, once=True)
        job = store.get(job.id)
        trace = load_trace(sorted(job.traces_dir.iterdir())[0])
        system = job.build_system()
        assert verify_trace(system, trace).ok

    def test_bad_description_fails_cleanly(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(
            {"program": "x.rc", "processes": [{"name": "p", "proc": "nope"}]},
            _options(),
            program_source="proc main() { skip; }",
        )
        serve(store, once=True)
        job = store.get(job.id)
        assert job.state == "failed"
        assert job.error

    def test_serve_respects_max_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        _submit_fig3(store)
        _submit_fig3(store)
        assert serve(store, once=True, max_jobs=1) == 1
        states = sorted(j.state for j in store.jobs())
        assert states == ["done", "queued"]


class TestStopResume:
    def _submit_loop(self, store, **options):
        return store.submit(
            TOSS_LOOP_DESCRIPTION,
            _options(**options),
            program_source=TOSS_LOOP_SRC,
            name="loop",
        )

    def test_stop_mid_run_then_resume_completes_identically(self, tmp_path):
        store = JobStore(tmp_path)
        job = self._submit_loop(store, progress_interval=0.01)
        claimed = store.claim_next()
        assert claimed.id == job.id

        worker = threading.Thread(
            target=run_job,
            args=(store, claimed),
            kwargs={"stop_poll_interval": 0.0, "checkpoint_interval": 0.01},
        )
        worker.start()
        # Stop as soon as the first heartbeat proves the search is live.
        deadline = time.monotonic() + 30
        while not job.stats_path.exists() and time.monotonic() < deadline:
            time.sleep(0.005)
        store.request_stop(job.id)
        worker.join(timeout=60)
        assert not worker.is_alive()

        job = store.get(job.id)
        if job.state == "done":
            # The search finished before the stop landed — legal, but
            # then there is nothing to resume; the parity half of this
            # contract is still asserted below via the result file.
            pass
        else:
            assert job.state == "stopped"
            assert job.frontier_path.exists()
            # Resume via a *fresh* store (nothing in memory carries over).
            fresh = JobStore(tmp_path)
            fresh.resume(job.id)
            assert fresh.get(job.id).state == "queued"
            assert serve(fresh, once=True) == 1
            job = fresh.get(job.id)
            assert job.state == "done"
            assert not job.frontier_path.exists()

        result = json.loads(job.result_path.read_text())
        base = run_search(
            job.build_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=60),
        )
        assert result["ok"] is True
        for field in ("paths_explored", "states_visited", "transitions_executed"):
            assert result["stats"][field] == getattr(base.stats, field), field
        assert result["distinct_states"] == base.distinct_states

    def test_resume_clears_stop_marker(self, tmp_path):
        store = JobStore(tmp_path)
        job = _submit_fig3(store)
        job.set_state("stopped")
        store.request_stop(job.id)
        store.resume(job.id)
        job = store.get(job.id)
        assert job.state == "queued"
        assert not job.stop_path.exists()


@pytest.mark.slow
class TestCrashRecoveryJob:
    """Satellite: a worker process SIGKILLed mid-subtree must not lose
    or double-count work — the finished job matches the jobs=1 run."""

    def test_job_completes_after_worker_kill(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(
            TOSS_LOOP_DESCRIPTION,
            _options(jobs=2),
            program_source=TOSS_LOOP_SRC,
            name="loop-crash",
        )
        claimed = store.claim_next()
        run_job(store, claimed, kill_worker_after_paths=3)
        job = store.get(job.id)
        assert job.state == "done"
        result = json.loads(job.result_path.read_text())
        assert result["stats"]["leases_requeued"] >= 1

        base = run_search(
            job.build_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=60),
        )
        for field in ("paths_explored", "states_visited", "transitions_executed"):
            assert result["stats"][field] == getattr(base.stats, field), field
        assert result["distinct_states"] == base.distinct_states


class TestObservabilitySurface:
    """Coverage gauges in heartbeats, the shared manifest ``meta``
    block, and the ``--metrics-out`` Prometheus textfile exporter."""

    def test_coverage_flows_into_manifest_and_heartbeat(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.submit(
            FIG3_DESCRIPTION,
            _options(coverage=True),
            program_source=FIG3_SRC,
            name="fig3-cov",
        )
        serve(store, once=True)
        job = store.get(job.id)
        manifest = json.loads(job.manifest_path.read_text())
        meta = manifest["meta"]
        assert meta["tool"] == "repro" and meta["version"]
        assert meta["language"] == "rc"
        assert meta["engine"] in ("walk", "compiled")
        coverage = manifest["report"]["coverage"]
        assert coverage["summary"]["nodes_covered"] > 0
        # The embedded program text lets `repro report` annotate lines.
        assert manifest["program"]["text"] == FIG3_SRC
        beat = job.latest_stats()
        assert beat["stats"]["coverage_nodes"] == (
            coverage["summary"]["nodes_covered"]
        )
        assert beat["stats"]["coverage_nodes_total"] == (
            coverage["summary"]["nodes_total"]
        )

    def test_serve_exports_prometheus_textfile(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        _submit_fig3(store)
        metrics = tmp_path / "metrics" / "repro.prom"
        serve(store, once=True, metrics_out=metrics)
        text = metrics.read_text()
        assert 'repro_jobs{state="done"} 1' in text
        assert "repro_states_visited{" in text
        assert "# TYPE repro_jobs gauge" in text
        assert not metrics.with_name(metrics.name + ".tmp").exists()
