"""The work-stealing scheduler: parity, suspension, crash recovery.

The headline contract: a steal-scheduled search — any number of
workers, any steal pattern, any crash/requeue history — produces a
merged report counter-for-counter identical to the sequential DFS,
excluding only the backtracking-cost group and the stealing counters
themselves (NON_PARITY_FIELDS in conftest).
"""

import pytest

from repro import SearchOptions, run_search
from repro.service import work_stealing_search
from repro.verisoft import SCHEDULERS, SearchStats

from .conftest import (
    assert_report_parity,
    deadlock_system,
    fig3_system,
    racing_system,
    toss_loop_system,
)


def _steal_options(jobs=1, **kwargs):
    kwargs.setdefault("count_states", True)
    kwargs.setdefault("max_depth", 40)
    return SearchOptions(
        strategy="parallel", scheduler="steal", jobs=jobs, **kwargs
    )


class TestSchedulerOption:
    def test_registry(self):
        assert SCHEDULERS == ("static", "steal")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            run_search(fig3_system(), SearchOptions(scheduler="lifo"))

    def test_scheduler_recorded_in_options_dict(self):
        options = _steal_options()
        assert options.as_dict()["scheduler"] == "steal"
        assert SearchOptions(**options.as_dict()).scheduler == "steal"


class TestInProcessParity:
    """jobs=1 runs the lease loop in-process — the reference for the
    multiprocess path and the fastest parity check."""

    @pytest.mark.parametrize(
        "make_system",
        [fig3_system, racing_system, deadlock_system],
        ids=["fig3", "racing", "deadlock"],
    )
    def test_matches_sequential_dfs(self, make_system):
        base = run_search(
            make_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=40),
        )
        report = run_search(make_system(), _steal_options(jobs=1))
        assert_report_parity(report, base)

    def test_stats_record_lease_counters(self):
        report = run_search(fig3_system(), _steal_options(jobs=1))
        assert report.stats.leases >= 1
        assert report.stats.steals == 0
        assert report.stats.leases_requeued == 0
        assert report.stats.jobs == 1
        assert report.worker_summary is not None
        assert report.worker_summary["w0"]["leases"] == report.stats.leases

    def test_stop_on_first_short_circuits(self):
        report = run_search(
            fig3_system(), _steal_options(jobs=1, stop_on_first=True)
        )
        assert not report.ok
        # Same convention as the sequential DFS: the report simply stops
        # early (no incomplete flag), having explored fewer paths.
        full = run_search(
            fig3_system(), SearchOptions(strategy="dfs", max_depth=40)
        )
        assert report.paths_explored < full.paths_explored

    def test_max_paths_budget_truncates(self):
        report = run_search(fig3_system(), _steal_options(jobs=1, max_paths=3))
        assert report.truncated
        assert report.paths_explored <= 4


class TestMultiprocessParity:
    def test_jobs_4_matches_sequential_and_steals(self):
        base = run_search(
            fig3_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=40),
        )
        report = run_search(fig3_system(), _steal_options(jobs=4))
        assert_report_parity(report, base)
        # With idle workers and one subtree, work must have been stolen.
        assert report.stats.steals >= 1
        assert report.stats.leases > 1
        assert report.worker_summary is not None
        assert (
            sum(w["leases"] for w in report.worker_summary.values())
            == report.stats.leases
        )

    def test_jobs_2_scheduling_nondeterminism_parity(self):
        base = run_search(
            racing_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=40),
        )
        report = run_search(racing_system(), _steal_options(jobs=2))
        assert_report_parity(report, base)

    def test_worker_summary_reaches_manifest(self):
        from repro.obs import build_manifest

        report = run_search(fig3_system(), _steal_options(jobs=2))
        manifest = build_manifest(report=report)
        assert manifest["report"]["workers"] == report.worker_summary


class TestSuspension:
    def test_suspend_yields_checkpoint_and_partial_report(self):
        calls = [0]

        def stop_soon():
            calls[0] += 1
            return calls[0] >= 2

        report = work_stealing_search(
            fig3_system(), _steal_options(jobs=1), should_suspend=stop_soon
        )
        assert report.incomplete
        assert report.checkpoint is not None
        assert not report.checkpoint.done()
        assert report.paths_explored >= 1

    def test_resume_completes_identically(self):
        base = run_search(
            fig3_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=40),
        )
        calls = [0]

        def stop_soon():
            calls[0] += 1
            return calls[0] >= 2

        partial = work_stealing_search(
            fig3_system(), _steal_options(jobs=1), should_suspend=stop_soon
        )
        final = work_stealing_search(
            fig3_system(), _steal_options(jobs=1), initial=partial.checkpoint
        )
        assert final.checkpoint is None
        assert_report_parity(final, base)

    def test_periodic_checkpoints_are_resumable(self):
        # Every on_checkpoint snapshot — taken while leases were still
        # in flight — must itself resume to the sequential result.
        base = run_search(
            fig3_system(),
            SearchOptions(strategy="dfs", count_states=True, max_depth=40),
        )
        snapshots = []
        work_stealing_search(
            fig3_system(),
            _steal_options(jobs=1),
            on_checkpoint=snapshots.append,
            checkpoint_interval=0.0,
        )
        assert snapshots
        probe = snapshots[len(snapshots) // 2]
        resumed = work_stealing_search(
            fig3_system(), _steal_options(jobs=1), initial=probe
        )
        assert_report_parity(resumed, base)


@pytest.mark.slow
class TestCrashRecovery:
    """Satellite: SIGKILL a worker mid-subtree; the lease re-queues and
    the job completes with a report identical to the undisturbed run."""

    def test_killed_worker_lease_requeued_and_report_identical(self):
        system = toss_loop_system(rounds=6)
        base = run_search(
            system, SearchOptions(strategy="dfs", count_states=True, max_depth=60)
        )
        report = work_stealing_search(
            toss_loop_system(rounds=6),
            _steal_options(jobs=2, max_depth=60),
            kill_worker_after_paths=3,
        )
        assert report.stats.leases_requeued >= 1
        assert_report_parity(report, base)
        assert report.worker_summary is not None
        assert any(not w["alive"] for w in report.worker_summary.values())


class TestStatsSurface:
    def test_ticker_line_shows_steals_when_nonzero(self):
        stats = SearchStats(leases=5, steals=2, leases_requeued=1)
        line = stats.ticker_line()
        assert "steals=2" in line
        assert "requeued=1" in line

    def test_describe_shows_lease_block(self):
        stats = SearchStats(leases=5, steals=2, leases_requeued=1)
        assert "work stealing" in stats.describe()
        quiet = SearchStats()
        assert "work stealing" not in quiet.describe()

    def test_stats_json_includes_steal_counters(self):
        report = run_search(fig3_system(), _steal_options(jobs=1))
        doc = report.stats.json_dict()
        assert {"leases", "steals", "leases_requeued"} <= set(doc)
