"""Shared test utilities."""

from __future__ import annotations

from typing import Any

from repro import System, run_search
from repro.runtime.system import Run
from repro.verisoft import collect_output_traces


def dfs_search(system, **kwargs):
    """Exhaustive DFS through the unified entry point.

    A thin test-side shorthand for ``run_search(system, strategy="dfs",
    **kwargs)``; every keyword is a :class:`repro.SearchOptions` field.
    """
    return run_search(system, strategy="dfs", **kwargs)


def run_single(
    source_or_cfgs,
    proc: str = "main",
    args: tuple = (),
    objects: dict[str, Any] | None = None,
    max_steps: int = 10_000,
    toss_choices: list[int] | None = None,
) -> Run:
    """Run a single-process system to completion with a trivial scheduler.

    ``objects`` maps names to ("channel", capacity) / ("semaphore", n) /
    ("shared", init) / ("sink",); an ``out`` sink is always present.
    ``toss_choices`` supplies VS_toss answers in order (default: all 0).
    """
    system = System(source_or_cfgs)
    system.add_env_sink("out")
    for name, spec in (objects or {}).items():
        kind = spec[0]
        if kind == "channel":
            system.add_channel(name, capacity=spec[1])
        elif kind == "semaphore":
            system.add_semaphore(name, initial=spec[1])
        elif kind == "shared":
            system.add_shared(name, initial=spec[1])
        elif kind == "sink":
            system.add_env_sink(name)
        else:
            raise ValueError(f"unknown object kind {kind!r}")
    system.add_process("P", proc, list(args))
    run = system.start()
    run.start_processes()
    tosses = list(toss_choices or [])
    steps = 0
    while steps < max_steps:
        steps += 1
        pending = run.toss_pending()
        if pending is not None:
            value = tosses.pop(0) if tosses else 0
            run.answer_toss(pending, value)
            continue
        enabled = run.enabled_processes()
        if not enabled:
            break
        run.execute_visible(enabled[0])
    return run


def outputs_of(run: Run, sink: str = "out") -> list:
    return run.env_outputs(sink)


def single_process_behaviors(
    cfgs_or_source,
    proc: str,
    args: tuple = (),
    objects: dict[str, Any] | None = None,
    max_depth: int = 60,
) -> set[tuple]:
    """All output traces of a single-process system on sink ``out``."""
    system = System(cfgs_or_source)
    system.add_env_sink("out")
    for name, spec in (objects or {}).items():
        kind = spec[0]
        if kind == "channel":
            system.add_channel(name, capacity=spec[1])
        elif kind == "semaphore":
            system.add_semaphore(name, initial=spec[1])
        elif kind == "shared":
            system.add_shared(name, initial=spec[1])
    system.add_process("P", proc, list(args))
    return collect_output_traces(system, "out", max_depth=max_depth)


# Re-exported from the library so existing test imports keep working.
from repro.verisoft.behaviors import behavior_inclusion, matches_with_erasure  # noqa: E402,F401
