"""Whole-pipeline integration tests: parse → close → run → explore,
including multi-process systems mixing closed code with manual stubs."""


from tests.helpers import dfs_search
from repro import (
    System,
    close_program,
    collect_output_traces,
    parse_program,
)
from repro.verisoft import replay


class TestOpenProducerConsumer:
    SOURCE = """
    extern proc next_item();

    proc producer(n) {
        var i = 0;
        while (i < n) {
            var item;
            item = next_item();
            if (item % 2 == 0) { send(work, 'even'); } else { send(work, 'odd'); }
            i = i + 1;
        }
        send(work, 'stop');
    }

    proc consumer() {
        var evens = 0;
        var odds = 0;
        var running = 1;
        while (running == 1) {
            var m;
            m = recv(work);
            if (m == 'even') { evens = evens + 1; }
            if (m == 'odd') { odds = odds + 1; }
            if (m == 'stop') { running = 0; }
        }
        send(out, evens);
        send(out, odds);
        VS_assert(evens + odds <= 2);
    }
    """

    def build(self, n):
        closed = close_program(self.SOURCE)
        system = System(closed.cfgs)
        system.add_channel("work", capacity=2)
        system.add_env_sink("out")
        system.add_process("prod", "producer", [n])
        system.add_process("cons", "consumer", [])
        return system

    def test_all_splits_observed(self):
        traces = collect_output_traces(self.build(2), "out", max_depth=60)
        assert traces == {(2, 0), (1, 1), (0, 2)}

    def test_assertion_violated_beyond_capacity(self):
        report = dfs_search(self.build(3), max_depth=60)
        assert report.violations

    def test_assertion_holds_at_capacity(self):
        report = dfs_search(self.build(2), max_depth=60)
        assert not report.violations

    def test_violation_trace_replays_deterministically(self):
        system = self.build(3)
        report = dfs_search(system, max_depth=60, stop_when=lambda r: bool(r.violations))
        trace = report.violations[0].trace
        run = replay(system, trace)
        # After replay the consumer has just failed its assertion.
        assert sum(run.env_outputs("out")) == 3


class TestManualStubPlusAutoClosing:
    """The paper's intended methodology (Section 1): 'a developer provides
    manually an implementation for a partial model of the environment ...
    and then applies our algorithm to close the remainder.'"""

    SOURCE = """
    extern proc get_noise();

    proc subscriber_model() {
        // Manual stub: the developer wants exactly these two scenarios.
        var action;
        action = VS_toss(1);
        if (action == 0) { send(requests, 'call'); } else { send(requests, 'hangup'); }
    }

    proc server() {
        var m;
        m = recv(requests);
        var noise;
        noise = get_noise();
        if (noise % 100 < 50) { send(log, 'low'); } else { send(log, 'high'); }
        if (m == 'call') { send(out, 'connected'); } else { send(out, 'idle'); }
    }
    """

    def test_combined_behaviours(self):
        closed = close_program(self.SOURCE)
        system = System(closed.cfgs)
        system.add_channel("requests", capacity=1)
        system.add_env_sink("log")
        system.add_env_sink("out")
        system.add_process("stub", "subscriber_model", [])
        system.add_process("srv", "server", [])
        traces = collect_output_traces(system, "out", max_depth=30)
        assert traces == {("connected",), ("idle",)}

    def test_stub_toss_and_closing_toss_compose(self):
        closed = close_program(self.SOURCE)
        system = System(closed.cfgs)
        system.add_channel("requests", capacity=1)
        system.add_env_sink("log")
        system.add_env_sink("out")
        system.add_process("stub", "subscriber_model", [])
        system.add_process("srv", "server", [])
        report = dfs_search(system, max_depth=30, por=True)
        # 2 stub choices x 2 noise choices.
        assert report.paths_explored == 4


class TestClosedSourceExportExecution:
    def test_exported_source_runs_in_system(self):
        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            var i = 0;
            while (i < 2) {
                if (x > 0) { send(out, 'pos'); } else { send(out, 'neg'); }
                i = i + 1;
            }
        }
        """
        closed = close_program(source)
        reparsed = parse_program(closed.to_source())
        system = System(reparsed)
        system.add_env_sink("out")
        system.add_process("m", "main", [])
        traces = collect_output_traces(system, "out", max_depth=30)
        assert traces == {
            ("pos", "pos"),
            ("pos", "neg"),
            ("neg", "pos"),
            ("neg", "neg"),
        }


class TestDivergenceElimination:
    """Step 4 'eliminates cyclic paths that traverse exclusively unmarked
    nodes.  Divergences due to such paths are therefore not preserved' —
    check the documented behaviour end to end."""

    def test_env_controlled_divergence_removed(self):
        from repro.runtime import SystemConfig

        source = """
        extern proc env();
        proc main() {
            var x;
            x = env();
            while (x != 0) { x = x - 1; }
            send(out, 'done');
        }
        """
        closed = close_program(source)
        system = System(closed.cfgs, config=SystemConfig(divergence_budget=2000))
        system.add_env_sink("out")
        system.add_process("m", "main", [])
        report = dfs_search(system, max_depth=20)
        # The tainted loop was erased: no divergence, output preserved.
        assert not report.divergences
        assert report.ok
