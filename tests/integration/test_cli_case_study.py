"""The whole case study driven purely through the CLI surface."""

import json

import pytest

from repro.cli import main
from repro.fiveess import build_app


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli-5ess")
    app = build_app(n_lines=2, calls_per_line=1)
    program = tmp / "switch.rc"
    program.write_text(app.source)
    description = {
        "program": "switch.rc",
        "close": {},
        "objects": (
            [
                {"kind": "channel", "name": f"setup_{i}", "capacity": 2}
                for i in range(2)
            ]
            + [
                {"kind": "channel", "name": f"resp_{i}", "capacity": 1}
                for i in range(2)
            ]
            + [
                {"kind": "channel", "name": f"teardown_{i}", "capacity": 1}
                for i in range(2)
            ]
            + [
                {"kind": "channel", "name": "billing", "capacity": 4},
                {"kind": "semaphore", "name": "trunks", "initial": 2},
                {"kind": "shared", "name": "line_busy", "initial": 0},
                {"kind": "shared", "name": "fwd_0", "initial": -1},
                {"kind": "shared", "name": "fwd_1", "initial": -1},
                {"kind": "sink", "name": "status"},
            ]
        ),
        "processes": [
            {"name": "line_0", "proc": "line_handler", "args": [0, 1]},
            {"name": "line_1", "proc": "line_handler", "args": [1, 1]},
            {"name": "term_0", "proc": "term_handler", "args": [0]},
            {"name": "term_1", "proc": "term_handler", "args": [1]},
            {"name": "billing", "proc": "billing_daemon", "args": []},
        ],
    }
    system = tmp / "system.json"
    system.write_text(json.dumps(description))
    return tmp, program, system


class TestCliCaseStudy:
    def test_close_and_analyze(self, workspace, capsys):
        tmp, program, _ = workspace
        closed = tmp / "closed.rc"
        assert main(["close", str(program), "-o", str(closed), "--stats"]) == 0
        assert "VS_toss" in closed.read_text()
        assert main(["analyze", str(program)]) == 0
        out = capsys.readouterr().out
        assert "proc line_handler" in out

    def test_search_finds_billing_violation(self, workspace, capsys):
        _, _, system = workspace
        code = main(
            [
                "search",
                str(system),
                "--max-depth",
                "60",
                "--max-paths",
                "20000",
                "--time-budget",
                "60",
                "--stop-on-first",
            ]
        )
        out = capsys.readouterr().out
        # stop-on-first halts on the first event: either the quiescent
        # deadlock or the billing violation — both are real findings.
        assert code == 3
        assert "deadlock" in out or "assertion violated" in out

    def test_walk_mode(self, workspace, capsys):
        _, _, system = workspace
        code = main(
            [
                "search", str(system), "--strategy", "random",
                "--walks", "50", "--max-depth", "60",
            ]
        )
        out = capsys.readouterr().out
        assert "paths=50" in out
        assert code in (0, 3)

    def test_graph_export(self, workspace, tmp_path, capsys):
        _, program, _ = workspace
        out_dir = tmp_path / "dots"
        assert (
            main(
                [
                    "graph",
                    str(program),
                    "--closed",
                    "--proc",
                    "term_handler",
                    "--out-dir",
                    str(out_dir),
                ]
            )
            == 0
        )
        assert (out_dir / "term_handler.dot").read_text().startswith("digraph")
