"""End-to-end reproduction of the paper's Figures 2 and 3, as tests.

The benchmark harness (benchmarks/test_fig2_transform.py and
test_fig3_transform.py) regenerates the full figures; these tests pin
the headline facts so regressions are caught in the fast suite.
"""

import pytest

from repro import System, close_program, collect_output_traces

P_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""

Q_SRC = """
proc q(x) {
    var cnt = 0;
    while (cnt < 10) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""


def open_behaviors(source, proc, inputs):
    traces = set()
    for value in inputs:
        system = System(source)
        system.add_env_sink("out")
        system.add_process("P", proc, [value])
        traces |= collect_output_traces(system, "out", max_depth=40)
    return traces


def closed_behaviors(source, proc):
    closed = close_program(source, env_params={proc: ["x"]})
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return collect_output_traces(system, "out", max_depth=40)


@pytest.fixture(scope="module")
def fig2():
    return {
        "open": open_behaviors(P_SRC, "p", range(1024)),
        "closed": closed_behaviors(P_SRC, "p"),
    }


@pytest.fixture(scope="module")
def fig3():
    return {
        "open": open_behaviors(Q_SRC, "q", range(1024)),
        "closed": closed_behaviors(Q_SRC, "q"),
    }


class TestFigure2:
    def test_open_system_has_two_behaviours(self, fig2):
        # For any input, p emits either ten 'even's or ten 'odd's.
        assert fig2["open"] == {("even",) * 10, ("odd",) * 10}

    def test_closed_system_has_all_mixtures(self, fig2):
        assert len(fig2["closed"]) == 1024

    def test_strict_upper_approximation(self, fig2):
        """The paper: 'the resulting closed program is a strict upper
        approximation of p combined with its most general environment'."""
        assert fig2["open"] < fig2["closed"]

    def test_mixed_sequence_is_new(self, fig2):
        mixed = ("even", "odd") * 5
        assert mixed in fig2["closed"]
        assert mixed not in fig2["open"]


class TestFigure3:
    def test_open_system_exhibits_all_bit_patterns(self, fig3):
        # q sends the ten least-significant bits of x.
        assert len(fig3["open"]) == 1024

    def test_optimal_translation(self, fig3):
        """The paper: 'the resulting closed program is equivalent to q
        combined with its most general environment'."""
        assert fig3["open"] == fig3["closed"]


class TestFigure2Vs3:
    def test_same_closed_behaviours(self, fig2, fig3):
        """p and q are functionally distinct but close to the same
        program."""
        assert fig2["closed"] == fig3["closed"]
