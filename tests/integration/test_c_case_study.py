"""End-to-end: a multi-function C program (structs, switch, loops,
pointers) through the pycparser front end, closed, and explored."""

import pytest

pytest.importorskip("pycparser")

from tests.helpers import dfs_search
from repro import System, close_program, collect_output_traces
from repro.lang.cfront import c_to_program

C_SOURCE = """
int poll_event();
int sensor_value();

struct stats { int highs; int lows; };

void note(struct stats *s, int high) {
    if (high) {
        s->highs += 1;
    } else {
        s->lows += 1;
    }
}

int classify(int v) {
    if (v > 50) { return 1; }
    return 0;
}

void monitor(int cycles) {
    struct stats s;
    s.highs = 0;
    s.lows = 0;
    int i;
    for (i = 0; i < cycles; i++) {
        int ev = poll_event();
        switch (ev % 3) {
        case 0:
            send(log, "idle");
            break;
        case 1: {
            int v = sensor_value();
            int high = classify(v);
            note(&s, high);
            if (high) { send(log, "high"); } else { send(log, "low"); }
            break;
        }
        default:
            send(log, "maintenance");
            break;
        }
    }
    VS_assert(s.highs + s.lows <= cycles);
    send(log, "done");
}
"""


@pytest.fixture(scope="module")
def closed():
    return close_program(c_to_program(C_SOURCE))


def build(closed, cycles=2):
    system = System(closed.cfgs)
    system.add_env_sink("log")
    system.add_process("mon", "monitor", [cycles])
    return system


class TestCCaseStudy:
    def test_translates_and_closes(self, closed):
        assert set(closed.cfgs) == {"note", "classify", "monitor"}
        for cfg in closed.cfgs.values():
            cfg.validate()

    def test_env_branching_becomes_toss(self, closed):
        from repro.cfg import NodeKind

        assert closed.cfgs["monitor"].nodes_of_kind(NodeKind.TOSS)
        # classify's parameter came only from the env value: removed.
        assert closed.removed_params.get("classify") == ("v",)

    def test_all_event_patterns_explored(self, closed):
        report = dfs_search(build(closed), max_depth=40)
        assert report.ok  # the bookkeeping assertion is preserved & holds
        # Ground truth: 4 outcomes per cycle (idle | high | low |
        # maintenance).  The closed system explores at least those; the
        # upper approximation decorrelates classify's decision from the
        # display and the stats update, so extra (infeasible but
        # harmless) paths appear on top.
        assert report.paths_explored >= 16
        assert not report.truncated

    def test_observable_traces(self, closed):
        traces = collect_output_traces(build(closed, cycles=1), "log", max_depth=40)
        assert traces == {
            ("idle", "done"),
            ("high", "done"),
            ("low", "done"),
            ("maintenance", "done"),
        }

    def test_struct_counts_preserved(self, closed):
        # The stats struct is system data fed by env-dependent *choices*
        # but constant increments: the preserved assertion never fires.
        report = dfs_search(build(closed, cycles=3), max_depth=60)
        assert not report.violations
