"""The counterexample engine end-to-end on the closed 5ESS app.

The acceptance path: ``repro search --save-traces`` writes violation
traces, ``repro shrink`` minimizes one, and ``repro replay`` on the
shrunk file reproduces the same violation signature — all through the
CLI surface, with the trace files as the only state passed between
steps.
"""

import json

import pytest

from repro.cli import main
from repro.counterex import load_trace
from repro.fiveess import build_app


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("counterex-5ess")
    app = build_app(n_lines=2, calls_per_line=1)
    program = tmp / "switch.rc"
    program.write_text(app.source)
    description = {
        "program": "switch.rc",
        "close": {},
        "objects": (
            [
                {"kind": "channel", "name": f"setup_{i}", "capacity": 2}
                for i in range(2)
            ]
            + [
                {"kind": "channel", "name": f"resp_{i}", "capacity": 1}
                for i in range(2)
            ]
            + [
                {"kind": "channel", "name": f"teardown_{i}", "capacity": 1}
                for i in range(2)
            ]
            + [
                {"kind": "channel", "name": "billing", "capacity": 4},
                {"kind": "semaphore", "name": "trunks", "initial": 2},
                {"kind": "shared", "name": "line_busy", "initial": 0},
                {"kind": "shared", "name": "fwd_0", "initial": -1},
                {"kind": "shared", "name": "fwd_1", "initial": -1},
                {"kind": "sink", "name": "status"},
            ]
        ),
        "processes": [
            {"name": "line_0", "proc": "line_handler", "args": [0, 1]},
            {"name": "line_1", "proc": "line_handler", "args": [1, 1]},
            {"name": "term_0", "proc": "term_handler", "args": [0]},
            {"name": "term_1", "proc": "term_handler", "args": [1]},
            {"name": "billing", "proc": "billing_daemon", "args": []},
        ],
    }
    system = tmp / "system.json"
    system.write_text(json.dumps(description))
    return tmp, system


@pytest.fixture(scope="module")
def saved_traces(workspace):
    tmp, system = workspace
    traces = tmp / "traces"
    code = main(
        [
            "search",
            str(system),
            "--max-depth",
            "60",
            "--max-paths",
            "300",
            "--max-events",
            "20",
            "--save-traces",
            str(traces),
        ]
    )
    return code, traces


class TestCounterexamplePipeline:
    def test_search_finds_and_persists_violations(self, saved_traces, capsys):
        code, traces = saved_traces
        capsys.readouterr()
        assert code == 3
        files = sorted(traces.glob("*.json"))
        assert files
        # The seeded billing bug shows up as assertion traces; the
        # reactive quiescence deadlock is recorded too.
        assert any(f.name.startswith("assertion-") for f in files)
        doc = json.loads(files[0].read_text())
        assert doc["format"] == "repro-trace"
        assert doc["fingerprint"]
        assert doc["search"]["strategy"] == "dfs"

    def test_shrink_is_strictly_shorter_and_replays(
        self, workspace, saved_traces, capsys
    ):
        tmp, _ = workspace
        _, traces = saved_traces
        original = sorted(traces.glob("assertion-*.json"))[0]
        minimal = tmp / "min.json"
        capsys.readouterr()

        assert main(["shrink", str(original), "-o", str(minimal)]) == 0
        out = capsys.readouterr().out
        assert "shrunk" in out

        before = load_trace(original)
        after = load_trace(minimal)
        assert len(after.trace.choices) < len(before.trace.choices)
        assert after.signature() == before.signature()
        assert after.shrink["original_choices"] == len(before.trace.choices)

        # Replay of the shrunk file reproduces the same signature, from
        # the embedded system alone.
        assert main(["replay", str(minimal)]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_shrink_idempotent_via_cli(self, workspace, saved_traces, capsys):
        tmp, _ = workspace
        _, traces = saved_traces
        original = sorted(traces.glob("assertion-*.json"))[0]
        once = tmp / "once.json"
        twice = tmp / "twice.json"
        capsys.readouterr()
        assert main(["shrink", str(original), "-o", str(once)]) == 0
        assert main(["shrink", str(once), "-o", str(twice)]) == 0
        assert (
            load_trace(twice).trace.choices == load_trace(once).trace.choices
        )

    def test_deadlock_trace_replays_too(self, saved_traces, capsys):
        _, traces = saved_traces
        deadlocks = sorted(traces.glob("deadlock-*.json"))
        assert deadlocks
        capsys.readouterr()
        assert main(["replay", str(deadlocks[0])]) == 0
        assert "reproduced" in capsys.readouterr().out
