"""Integration test: a stop-and-wait protocol closed against the most
general lossy link (the examples/stop_and_wait.py scenario, pinned)."""

import pytest

from tests.helpers import dfs_search
from repro import System, close_program, collect_output_traces

PROTOCOL = """
extern proc link_quality();

proc deliver_or_drop(ch, frame) {
    var q;
    q = link_quality();
    if (q % 4 != 0) {
        send(ch, frame);
    } else {
        send(ch, 'lost');
    }
}

proc sender(n_frames, max_retries) {
    var down = channel('to_recv');
    var up = channel('to_send');
    var seq = 0;
    var frame = 0;
    while (frame < n_frames) {
        var tries = 0;
        var acked = 0;
        while (acked == 0) {
            if (tries > max_retries) {
                send(out, 'give-up');
                exit;
            }
            deliver_or_drop(down, frame * 2 + seq);
            var ack;
            ack = recv(up);
            if (ack != 'lost') {
                if (ack == seq) { acked = 1; }
            }
            tries = tries + 1;
        }
        seq = 1 - seq;
        frame = frame + 1;
    }
    send(out, 'sender-done');
}

proc receiver(n_frames) {
    var down = channel('to_recv');
    var up = channel('to_send');
    var expected = 0;
    var delivered = 0;
    while (true) {
        var m;
        m = recv(down);
        if (m != 'lost') {
            var seq = m % 2;
            var payload = m / 2;
            if (seq == expected) {
                send(out, payload);
                delivered = delivered + 1;
                VS_assert(payload == delivered - 1);
                expected = 1 - expected;
            }
            deliver_or_drop(up, seq);
        } else {
            skip;
        }
    }
}
"""


def build(n_frames=2, max_retries=2):
    closed = close_program(PROTOCOL)
    system = System(closed.cfgs)
    system.add_channel("to_recv", capacity=1)
    system.add_channel("to_send", capacity=1)
    system.add_env_sink("out")
    system.add_process("S", "sender", [n_frames, max_retries])
    system.add_process("R", "receiver", [n_frames])
    return closed, system


@pytest.fixture(scope="module")
def traces():
    _, system = build()
    return collect_output_traces(system, "out", max_depth=80)


class TestStopAndWait:
    def test_link_decisions_become_tosses(self):
        closed, _ = build()
        assert closed.proc_stats["deliver_or_drop"].toss_nodes == 1

    def test_ordering_assertion_holds_under_all_loss(self):
        _, system = build()
        report = dfs_search(system, max_depth=80, por=True)
        assert not report.violations
        assert not report.crashes

    def test_no_out_of_order_or_duplicate_delivery(self, traces):
        for trace in traces:
            payloads = [x for x in trace if isinstance(x, int)]
            assert payloads == sorted(set(payloads))
            assert payloads == list(range(len(payloads)))

    def test_success_outcome_reachable(self, traces):
        assert any(t and t[-1] == "sender-done" for t in traces)

    def test_give_up_reachable_under_heavy_loss(self, traces):
        assert any("give-up" in t for t in traces)

    def test_full_delivery_precedes_success(self, traces):
        for trace in traces:
            if trace and trace[-1] == "sender-done":
                assert [x for x in trace if isinstance(x, int)] == [0, 1]

    def test_more_retries_enable_more_outcomes(self):
        _, generous = build(max_retries=4)
        generous_traces = collect_output_traces(generous, "out", max_depth=120)
        _, stingy = build(max_retries=0)
        stingy_traces = collect_output_traces(stingy, "out", max_depth=120)
        success = lambda ts: any(t and t[-1] == "sender-done" for t in ts)  # noqa: E731
        assert success(generous_traces)
        assert success(stingy_traces)  # lossless pattern still succeeds
        # With zero retries a single loss aborts: give-up outcomes exist.
        assert any("give-up" in t for t in stingy_traces)
