"""End-to-end: close → search → shrink → replay on real Python programs.

The acceptance path of the Python front end: ``repro close`` and
``repro search`` take the ``.py`` file directly, the seeded assertion
violation is found at exact counter parity across engines and job
counts, saved traces replay with verdict ``reproduced`` on both
engines, and the triage signature cites the Python file and line.
"""

import json
import pathlib
import re

import pytest

from repro.cli import main
from repro.sysdesc import load_description, system_from_description
from repro.verisoft import SearchOptions, run_search

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
WORKER_POOL = EXAMPLES / "py_worker_pool.py"
PINGER = EXAMPLES / "py_pinger.py"


def build_system(path: pathlib.Path):
    description = load_description(path)
    return system_from_description(description, path.parent)


def counters(report) -> tuple:
    return (
        report.paths_explored,
        report.transitions_executed,
        len(report.violations),
        len(report.deadlocks),
    )


@pytest.fixture(scope="module")
def pinger_baseline():
    report = run_search(build_system(PINGER), SearchOptions(strategy="dfs"))
    assert not report.ok and report.violations
    return counters(report)


class TestCounterParity:
    def test_compiled_engine_matches_walk(self, pinger_baseline):
        report = run_search(
            build_system(PINGER),
            SearchOptions(strategy="dfs", engine="compiled"),
        )
        assert counters(report) == pinger_baseline

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_parallel_jobs_match_sequential(self, pinger_baseline, jobs):
        report = run_search(
            build_system(PINGER),
            SearchOptions(strategy="parallel", jobs=jobs),
        )
        assert counters(report) == pinger_baseline

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_parallel_compiled_matches_too(self, pinger_baseline, jobs):
        report = run_search(
            build_system(PINGER),
            SearchOptions(strategy="parallel", jobs=jobs, engine="compiled"),
        )
        assert counters(report) == pinger_baseline


class TestWorkerPoolCli:
    def test_close_writes_closed_rc(self, tmp_path, capsys):
        out = tmp_path / "closed.rc"
        assert main(["close", str(WORKER_POOL), "-o", str(out)]) == 0
        closed = out.read_text()
        assert "VS_toss" in closed  # the open interface became tosses
        assert "next_job" not in closed  # the extern call is gone

    @pytest.fixture(scope="class")
    def search_run(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("pyfront-e2e")
        traces = tmp / "traces"
        stats = tmp / "stats.json"
        code = main(
            [
                "search",
                str(WORKER_POOL),
                "--save-traces",
                str(traces),
                "--stats-json",
                str(stats),
                "--stop-on-first",
            ]
        )
        return code, traces, stats

    def test_exit_code_signals_violations(self, search_run):
        assert search_run[0] == 3

    def test_triage_cites_python_file_and_line(self, capsys):
        code = main(["search", str(PINGER), "--stop-on-first"])
        assert code == 3
        out = capsys.readouterr().out
        match = re.search(r"assertion at \[monitor, \d+\] \(py_pinger\.py:(\d+)\)", out)
        assert match, out
        line = int(match.group(1))
        source_lines = PINGER.read_text().splitlines()
        assert source_lines[line - 1].strip().startswith("assert ")

    def test_stats_json_records_language(self, search_run):
        stats = json.loads(search_run[2].read_text())
        assert stats["language"] == "python"

    def test_manifest_records_language(self, search_run):
        manifest = json.loads((search_run[1] / "run.json").read_text())
        assert manifest["language"] == "python"

    def test_trace_metadata_records_language(self, search_run):
        trace = json.loads((search_run[1] / "assertion-000.json").read_text())
        assert trace["search"]["language"] == "python"
        assert trace["system"]["description"]["language"] == "python"

    @pytest.mark.parametrize("engine", ["walk", "compiled"])
    def test_saved_trace_replays_reproduced(self, search_run, engine, capsys):
        trace = search_run[1] / "assertion-000.json"
        assert main(["replay", str(trace), "--engine", engine]) == 0
        assert "reproduced" in capsys.readouterr().out

    def test_shrink_then_replay_both_engines(self, search_run, tmp_path, capsys):
        trace = search_run[1] / "assertion-000.json"
        minimal = tmp_path / "minimal.json"
        assert main(["shrink", str(trace), "-o", str(minimal)]) == 0
        for engine in ("walk", "compiled"):
            assert main(["replay", str(minimal), "--engine", engine]) == 0
            assert "reproduced" in capsys.readouterr().out

    def test_embedded_payload_is_self_contained(self, search_run, tmp_path, capsys):
        # Copy the trace away from the examples directory: replay must
        # rebuild the system purely from the embedded description +
        # program source.
        trace = tmp_path / "moved.json"
        trace.write_text((search_run[1] / "assertion-000.json").read_text())
        assert main(["replay", str(trace)]) == 0
        assert "reproduced" in capsys.readouterr().out


class TestJobService:
    def test_submit_and_serve_python_program(self, tmp_path, capsys):
        jobs_dir = tmp_path / "jobs"
        assert (
            main(
                [
                    "submit",
                    str(PINGER),
                    "--jobs-dir",
                    str(jobs_dir),
                    "-j",
                    "1",
                ]
            )
            == 0
        )
        job_id = capsys.readouterr().out.strip()
        assert main(["serve", "--jobs-dir", str(jobs_dir), "--once"]) == 0
        from repro.service import JobStore

        job = JobStore(jobs_dir).get(job_id)
        assert job.state == "done"
        manifest = json.loads(job.manifest_path.read_text())
        assert manifest["language"] == "python"
        result = json.loads(job.result_path.read_text())
        assert result["ok"] is False  # the seeded violation was found
