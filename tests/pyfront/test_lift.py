"""Golden lift tests: Python subset → pretty-printed core RC.

Each case pairs a verifiable Python program with the RC source a human
would have written by hand; both are normalized and pretty-printed, and
the strings must match exactly.  This pins the lifter's output shape —
locals pre-declared at entry, ``range`` desugared to a counted loop,
``put``/``get`` as ``send``/``recv``, ``env.*`` as extern calls — at
the level a reviewer can read.
"""

import pytest

from repro.lang import normalize_program, parse_program, pretty
from repro.lang.python import python_to_program

HEADER = "from repro.pyruntime import Queue, spawn, env, log, toss\n"


def lifted_rc(py_source: str) -> str:
    """Lift Python and render the normalized core form."""
    return pretty(normalize_program(python_to_program(py_source, "golden.py")))


def expected_rc(rc_source: str) -> str:
    """Parse hand-written RC and render the same normalized form."""
    return pretty(normalize_program(parse_program(rc_source)))


def assert_golden(py_body: str, rc_source: str) -> None:
    assert lifted_rc(HEADER + py_body) == expected_rc(rc_source)


class TestGoldenLifts:
    def test_sequential_arithmetic_and_return(self):
        assert_golden(
            """
def calc(a, b):
    total = a * 2 + b % 3 - -1
    total //= 2
    return total

spawn(calc, 1, 2)
""",
            """
proc calc(a, b) {
    var total;
    total = a * 2 + b % 3 - -1;
    total = total / 2;
    return total;
}
""",
        )

    def test_if_elif_else_and_bool_ops(self):
        assert_golden(
            """
def choose(x, y):
    r = 0
    if x > 0 and y > 0:
        r = 1
    elif x == 0 or not (y == 0):
        r = 2
    else:
        r = 3
    return r

spawn(choose, 1, 2)
""",
            """
proc choose(x, y) {
    var r;
    r = 0;
    if (x > 0 && y > 0) { r = 1; }
    else { if (x == 0 || !(y == 0)) { r = 2; } else { r = 3; } }
    return r;
}
""",
        )

    def test_while_break_continue_pass(self):
        assert_golden(
            """
def loop(n):
    i = 0
    while True:
        i += 1
        if i >= n:
            break
        if i % 2 == 0:
            continue
        pass

spawn(loop, 5)
""",
            """
proc loop(n) {
    var i;
    i = 0;
    while (true) {
        i = i + 1;
        if (i >= n) { break; }
        if (i % 2 == 0) { continue; }
        skip;
    }
}
""",
        )

    def test_for_range_one_arg(self):
        assert_golden(
            """
def count(n):
    s = 0
    for i in range(n):
        s += i

spawn(count, 3)
""",
            """
proc count(n) {
    var s;
    var i;
    s = 0;
    for (i = 0; i < n; i = i + 1) { s = s + i; }
}
""",
        )

    def test_for_range_start_stop_step(self):
        assert_golden(
            """
def down(n):
    s = 0
    for i in range(n, 0, -2):
        s += i

spawn(down, 6)
""",
            """
proc down(n) {
    var s;
    var i;
    s = 0;
    for (i = n; i > 0; i = i - 2) { s = s + i; }
}
""",
        )

    def test_queue_ops_and_log(self):
        assert_golden(
            """
q = Queue(2)

def pump(src, dst, n):
    for i in range(n):
        v = src.get()
        log(v)
        dst.put(v + 1)

spawn(pump, q, q, 1)
""",
            """
proc pump(src, dst, n) {
    var i;
    var v;
    for (i = 0; i < n; i = i + 1) {
        v = recv(src);
        send('log', v);
        send(dst, v + 1);
    }
}
""",
        )

    def test_module_queue_by_name_inside_function(self):
        assert_golden(
            """
inbox = Queue(1)

def drain():
    v = inbox.get()
    inbox.put(v)

spawn(drain)
""",
            """
proc drain() {
    var v;
    v = recv('inbox');
    send('inbox', v);
}
""",
        )

    def test_env_calls_become_externs(self):
        program = python_to_program(
            HEADER
            + """
def poll(n):
    total = 0
    for i in range(n):
        total += env.read_sensor(i, n)
    env.report(total)
    assert total >= 0

spawn(poll, 2)
""",
            "golden.py",
        )
        assert set(program.externs) == {"read_sensor", "report"}
        assert len(program.externs["read_sensor"].params) == 2
        assert len(program.externs["report"].params) == 1
        assert lifted_rc(
            HEADER
            + """
def poll(n):
    total = 0
    for i in range(n):
        total += env.read_sensor(i, n)
    env.report(total)
    assert total >= 0

spawn(poll, 2)
"""
        ) == expected_rc(
            """
extern proc read_sensor(a0, a1);
extern proc report(a0);
proc poll(n) {
    var total;
    var i;
    total = 0;
    for (i = 0; i < n; i = i + 1) { total = total + read_sensor(i, n); }
    report(total);
    VS_assert(total >= 0);
}
"""
        )

    def test_toss_and_assert_with_message(self):
        assert_golden(
            """
def gamble(n):
    v = toss(n)
    assert v <= n, "toss exceeds bound"

spawn(gamble, 3)
""",
            """
proc gamble(n) {
    var v;
    v = VS_toss(n);
    VS_assert(v <= n);
}
""",
        )

    def test_module_constants_substituted(self):
        assert_golden(
            """
LIMIT = 4
GREETING = "hello"
FLAG = True

def use():
    a = LIMIT
    b = GREETING
    c = FLAG

spawn(use)
""",
            """
proc use() {
    var a;
    var b;
    var c;
    a = 4;
    b = 'hello';
    c = true;
}
""",
        )

    def test_string_atoms_and_comparison(self):
        assert_golden(
            """
def tag(kind):
    label = "none"
    if kind == 1:
        label = "one"
    return label

spawn(tag, 1)
""",
            """
proc tag(kind) {
    var label;
    label = 'none';
    if (kind == 1) { label = 'one'; }
    return label;
}
""",
        )

    def test_user_calls_in_expressions(self):
        assert_golden(
            """
def double(x):
    return x + x

def main(n):
    y = double(n) + double(n + 1)
    return y

spawn(main, 1)
""",
            """
proc double(x) { return x + x; }
proc main(n) {
    var y;
    y = double(n) + double(n + 1);
    return y;
}
""",
        )

    def test_docstrings_are_dropped(self):
        assert_golden(
            '''
def quiet():
    """Docstring, not behaviour."""
    x = 1

spawn(quiet)
''',
            """
proc quiet() {
    var x;
    x = 1;
}
""",
        )

    def test_locations_point_at_python_lines(self):
        program = python_to_program(
            HEADER
            + """
def p():
    x = 1
    assert x == 1

spawn(p)
""",
            "golden.py",
        )
        body = program.procs["p"].body
        stmts = [s for s in body if type(s).__name__ != "VarDecl"]
        # HEADER is 2 lines (import + blank): def on line 3, x = 1 on 4,
        # assert on 5.
        assert stmts[0].location.line == 4
        assert stmts[1].location.line == 5
        assert program.procs["p"].location.line == 3

    @pytest.mark.parametrize("value", ["0", "-7", "True", "False"])
    def test_literal_forms(self, value):
        source = HEADER + f"def lit():\n    x = {value}\n\nspawn(lit)\n"
        rc_value = {"True": "true", "False": "false"}.get(value, value)
        assert lifted_rc(source) == expected_rc(
            f"proc lit() {{ var x; x = {rc_value}; }}"
        )
