"""Out-of-subset rejection: one program per diagnostic.

The front end's contract is *no silent miscompilation*: every construct
outside the documented subset raises a :class:`PyFrontError` whose
message is anchored to the offending ``file:line:column``.  Each case
below is (name, source, message fragment); the suite asserts both the
rejection and the source anchor.
"""

import pytest

from repro.lang.python import PyFrontError, lift_module

HEADER = "from repro.pyruntime import Queue, spawn, env, log, toss, join_all\n"


def lift(body: str):
    return lift_module(HEADER + body, "bad.py")


#: (case id, module body, expected message fragment).  Bodies that need
#: no function context declare one; every body keeps at least one spawn
#: unless the error fires before spawn resolution.
FUNCTION_CASES = [
    ("decorator", "@staticmethod\ndef f():\n    pass\nspawn(f)\n", "decorators"),
    ("varargs", "def f(*a):\n    pass\nspawn(f)\n", "*args / **kwargs"),
    ("kwargs", "def f(**k):\n    pass\nspawn(f)\n", "**kwargs"),
    ("kwonly", "def f(*, a):\n    pass\nspawn(f, 1)\n", "keyword-only"),
    ("defaults", "def f(a=1):\n    pass\nspawn(f, 1)\n", "defaults"),
    ("posonly", "def f(a, /):\n    pass\nspawn(f, 1)\n", "positional-only"),
    (
        "param-shadows-runtime",
        "def f(log):\n    pass\nspawn(f, 1)\n",
        "shadows the repro.pyruntime import",
    ),
    (
        "local-shadows-queue",
        "q = Queue()\ndef f():\n    q = 1\nspawn(f)\n",
        "shadows the module-level queue",
    ),
    (
        "local-shadows-function",
        "def g():\n    pass\ndef f():\n    g = 1\nspawn(f)\n",
        "shadows the function",
    ),
    ("while-else", "def f():\n    while True:\n        break\n    else:\n        pass\nspawn(f)\n", "while/else"),
    ("for-else", "def f():\n    for i in range(2):\n        pass\n    else:\n        pass\nspawn(f)\n", "for/else"),
    (
        "for-non-range",
        "q = Queue()\ndef f():\n    for v in q:\n        pass\nspawn(f)\n",
        "only iterate over range",
    ),
    ("range-kwargs", "def f():\n    for i in range(stop=3):\n        pass\nspawn(f)\n", "no keyword arguments"),
    ("range-zero-step", "def f():\n    for i in range(0, 9, 0):\n        pass\nspawn(f)\n", "non-zero integer literal"),
    ("range-var-step", "def f(s):\n    for i in range(0, 9, s):\n        pass\nspawn(f, 2)\n", "non-zero integer literal"),
    ("range-arity", "def f():\n    for i in range(1, 2, 3, 4):\n        pass\nspawn(f)\n", "range() takes 1-3"),
    ("chained-assign", "def f():\n    a = b = 1\nspawn(f)\n", "chained assignment"),
    ("tuple-target", "def f():\n    a, b = 1, 2\nspawn(f)\n", "plain names"),
    ("aug-unsupported", "def f():\n    a = 1\n    a **= 2\nspawn(f)\n", "augmented assignment operator"),
    ("aug-attr-target", "def f(x):\n    x.a += 1\nspawn(f, 1)\n", "plain names"),
    ("assert-expr-msg", "def f(x):\n    assert x, str(x)\nspawn(f, 1)\n", "string literals"),
    ("break-outside", "def f():\n    break\nspawn(f)\n", "outside a loop"),
    ("continue-outside", "def f():\n    continue\nspawn(f)\n", "outside a loop"),
    ("import-in-function", "def f():\n    import os\nspawn(f)\n", "imports inside functions"),
    ("nested-def", "def f():\n    def g():\n        pass\nspawn(f)\n", "nested function"),
    ("try-stmt", "def f():\n    try:\n        pass\n    except ValueError:\n        pass\nspawn(f)\n", "try/except"),
    ("with-stmt", "def f(x):\n    with x:\n        pass\nspawn(f, 1)\n", "with blocks"),
    ("raise-stmt", "def f():\n    raise ValueError\nspawn(f)\n", "raise statements"),
    ("match-stmt", "def f(x):\n    match x:\n        case 1:\n            pass\nspawn(f, 1)\n", "match statements"),
    ("global-stmt", "def f():\n    global q\nspawn(f)\n", "global declarations"),
    ("del-stmt", "def f():\n    x = 1\n    del x\nspawn(f)\n", "del statements"),
    ("bare-expr", "def f(x):\n    x + 1\nspawn(f, 1)\n", "must be calls"),
    ("ann-only", "def f():\n    x: int\nspawn(f)\n", "annotation-only"),
    ("put-in-expr", "q = Queue()\ndef f():\n    x = q.put(1) + 1\nspawn(f)\n", "cannot be used in an"),
    ("put-result-captured", "q = Queue()\ndef f():\n    x = q.put(1)\nspawn(f)\n", "returns nothing"),
    ("log-result-captured", "def f(x):\n    y = log(x)\nspawn(f, 1)\n", "returns nothing"),
    ("put-arity", "q = Queue()\ndef f():\n    q.put(1, 2)\nspawn(f)\n", "exactly one value"),
    ("get-args", "q = Queue()\ndef f():\n    x = q.get(1)\nspawn(f)\n", "takes no arguments"),
    ("unknown-method", "q = Queue()\ndef f():\n    q.push(1)\nspawn(f)\n", "unknown queue method"),
    ("bad-queue-base", "def f(x):\n    y = (x + 1).get()\nspawn(f, 1)\n", "queue operations need"),
    ("indirect-call", "def f(x):\n    (x + 1)()\nspawn(f, 1)\n", "named functions"),
    ("call-a-parameter", "def f(g):\n    g()\nspawn(f, 1)\n", "unknown function"),
    ("log-in-expr", "def f(x):\n    y = log(x)\nspawn(f, 1)\n", "cannot be used in an expression"),
    ("log-arity", "def f(x):\n    log(x, x)\nspawn(f, 1)\n", "exactly one value"),
    ("toss-arity", "def f():\n    x = toss(1, 2)\nspawn(f)\n", "exactly one bound"),
    ("spawn-in-function", "def f():\n    spawn(f)\nspawn(f)\n", "only allowed at module level"),
    ("queue-in-function", "def f():\n    q = Queue()\nspawn(f)\n", "only allowed at module level"),
    ("join-in-function", "def f():\n    join_all()\nspawn(f)\n", "not callable here"),
    ("unknown-call", "def f():\n    helper()\nspawn(f)\n", "unknown function"),
    ("range-as-call", "def f():\n    x = range(3)\nspawn(f)\n", "for-loop iterable"),
    ("none-literal", "def f():\n    x = None\nspawn(f)\n", "None is not part"),
    ("float-literal", "def f():\n    x = 1.5\nspawn(f)\n", "unsupported literal"),
    ("keyword-call-arg", "def g(a):\n    pass\ndef f():\n    g(a=1)\nspawn(f)\n", "positionally"),
    ("chained-compare", "def f(x):\n    y = 0 < x < 9\nspawn(f, 1)\n", "chained comparisons"),
    ("in-compare", "def f(x):\n    y = x in x\nspawn(f, 1)\n", "unsupported comparison"),
    ("true-division", "def f(x):\n    y = x / 2\nspawn(f, 1)\n", "integer division"),
    ("power-op", "def f(x):\n    y = x ** 2\nspawn(f, 1)\n", "unsupported binary operator"),
    ("invert-op", "def f(x):\n    y = ~x\nspawn(f, 1)\n", "unsupported unary operator"),
    ("queue-as-value", "q = Queue()\ndef f():\n    x = q\nspawn(f)\n", "put/get operations"),
    ("runtime-as-value", "def f():\n    x = env\nspawn(f)\n", "no value of its own"),
    ("function-as-value", "def g():\n    pass\ndef f():\n    x = g\nspawn(f)\n", "used as a value"),
    ("undefined-name", "def f():\n    x = mystery\nspawn(f)\n", "undefined name"),
    ("list-literal", "def f():\n    x = [1]\nspawn(f)\n", "list literals"),
    ("dict-literal", "def f():\n    x = {}\nspawn(f)\n", "dict literals"),
    ("fstring", "def f(x):\n    y = f's{x}'\nspawn(f, 1)\n", "f-strings"),
    ("lambda", "def f():\n    g = lambda: 1\nspawn(f)\n", "lambda expressions"),
    ("ifexp", "def f(x):\n    y = 1 if x else 2\nspawn(f, 1)\n", "conditional expressions"),
    ("subscript", "def f(x):\n    y = x[0]\nspawn(f, 1)\n", "subscripting"),
    ("await", "async def f():\n    await g()\nspawn(f)\n", "module level"),
]

MODULE_CASES = [
    ("syntax-error", "def f(:\n", "not valid Python"),
    ("plain-import", "import os\n", "plain imports"),
    ("other-module-import", "from queue import Queue as Q\n", "repro.pyruntime import"),
    ("star-import", "from repro.pyruntime import *\n", "explicitly"),
    ("unknown-runtime-name", "from repro.pyruntime import magic\n", "no verifiable name"),
    (
        "duplicate-function",
        "def f():\n    pass\ndef f():\n    pass\nspawn(f)\n",
        "defined twice",
    ),
    (
        "function-name-collision",
        "q = Queue()\ndef q():\n    pass\nspawn(q)\n",
        "collides with a queue",
    ),
    ("multi-target-assign", "a = b = 1\n", "single plain name"),
    ("non-constant-module-value", "x = 1 + unknown\n", "int/bool/string"),
    ("queue-bad-kw", "q = Queue(maxsize=2)\n", "unexpected keyword"),
    ("queue-bad-capacity", "q = Queue('big')\n", "capacity must be an int"),
    ("queue-zero-capacity", "q = Queue(0)\n", "must be >= 1"),
    ("queue-two-args", "q = Queue(1, 2)\n", "single capacity"),
    ("module-for", "for i in range(3):\n    pass\n", "module level"),
    ("module-class", "class C:\n    pass\n", "module level"),
    (
        "main-guard-else",
        "def f():\n    pass\nspawn(f)\nif __name__ == '__main__':\n    join_all()\nelse:\n    join_all()\n",
        "else branch",
    ),
    ("module-bare-expr", "1 + 1\n", "spawn(...) or"),
    ("module-other-call", "print('hi')\n", "spawn(...) or"),
    ("spawn-kwargs", "def f():\n    pass\nspawn(fn=f)\n", "no keyword arguments"),
    ("spawn-empty", "spawn()\n", "needs a function"),
    ("spawn-not-function", "spawn(3)\n", "must be a function"),
    (
        "spawn-undefined-function",
        "def f():\n    pass\nspawn(g)\n",
        "must be a function",
    ),
    (
        "spawn-bad-arg",
        "def f(x):\n    pass\nq = Queue()\nspawn(f, q.get())\n",
        "literals, module constants",
    ),
    ("no-spawns", "def f():\n    pass\n", "no processes"),
    (
        "spawn-arity",
        "def f(a, b):\n    pass\nspawn(f, 1)\n",
        "takes 2",
    ),
    (
        "def-inside-main-guard",
        "if __name__ == '__main__':\n    def f():\n        pass\n",
        "module top level",
    ),
]


@pytest.mark.parametrize(
    "body,fragment", [case[1:] for case in FUNCTION_CASES], ids=[c[0] for c in FUNCTION_CASES]
)
def test_function_constructs_rejected(body, fragment):
    with pytest.raises(PyFrontError) as err:
        lift(body)
    assert fragment in str(err.value)


@pytest.mark.parametrize(
    "body,fragment", [case[1:] for case in MODULE_CASES], ids=[c[0] for c in MODULE_CASES]
)
def test_module_constructs_rejected(body, fragment):
    with pytest.raises(PyFrontError) as err:
        lift(body)
    assert fragment in str(err.value)


class TestAnchors:
    def test_message_carries_file_line_column(self):
        with pytest.raises(PyFrontError) as err:
            lift("def f():\n    x = [1, 2]\nspawn(f)\n")
        # HEADER is one line, so the offending list literal sits on
        # line 3 of the assembled module, column 9.
        assert "bad.py:3:9:" in str(err.value)

    def test_location_object_exposed(self):
        with pytest.raises(PyFrontError) as err:
            lift("def f():\n    x = [1]\nspawn(f)\n")
        assert err.value.location.line == 3
        assert err.value.filename == "bad.py"

    def test_module_level_anchor(self):
        with pytest.raises(PyFrontError) as err:
            lift_module("import os\n", "mod.py")
        assert "mod.py:1:1:" in str(err.value)

    def test_no_processes_is_file_anchored(self):
        with pytest.raises(PyFrontError) as err:
            lift_module("def f():\n    pass\n", "empty.py")
        message = str(err.value)
        assert message.startswith("empty.py")
        assert "spawn" in message
