"""The repro.pyruntime stub: verifiable programs stay runnable Python."""

import pytest

from repro import pyruntime


class TestQueue:
    def test_fifo(self):
        q = pyruntime.Queue(3)
        q.put(1)
        q.put(2)
        assert q.get() == 1
        assert q.get() == 2

    def test_default_capacity_is_one(self):
        assert pyruntime.Queue().capacity == 1

    @pytest.mark.parametrize("bad", [0, -1, "2", 1.5, True])
    def test_capacity_validated(self, bad):
        with pytest.raises(ValueError):
            pyruntime.Queue(bad)


class TestEnv:
    def test_unbound_names_return_zero(self):
        assert pyruntime.env.anything_at_all() == 0
        assert pyruntime.env.with_args(1, "x") == 0

    def test_bind_overrides(self):
        pyruntime.env.bind("probe", lambda: 7)
        try:
            assert pyruntime.env.probe() == 7
        finally:
            pyruntime.env._bindings.clear()

    def test_private_attributes_raise(self):
        with pytest.raises(AttributeError):
            pyruntime.env._secret


class TestToss:
    def test_stub_returns_zero(self):
        assert pyruntime.toss(5) == 0
        assert pyruntime.toss(0) == 0

    @pytest.mark.parametrize("bad", [-1, "3", 2.5, True])
    def test_bound_validated(self, bad):
        with pytest.raises(ValueError):
            pyruntime.toss(bad)


class TestSpawnJoin:
    def test_threads_run_and_join(self):
        box = []
        pyruntime.spawn(lambda v: box.append(v), 42)
        pyruntime.join_all()
        assert box == [42]

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_join_all_reraises_worker_failure(self):
        def boom():
            raise RuntimeError("worker died")

        pyruntime.spawn(boom)
        with pytest.raises(RuntimeError, match="worker died"):
            pyruntime.join_all()
        # The failure list is drained: a later join is clean.
        pyruntime.join_all()

    def test_queue_handoff_between_workers(self):
        q = pyruntime.Queue(1)
        got = []
        pyruntime.spawn(lambda: q.put("ping"))
        pyruntime.spawn(lambda: got.append(q.get()))
        pyruntime.join_all()
        assert got == ["ping"]


def test_log_prints(capsys):
    pyruntime.log(3)
    assert capsys.readouterr().out == "[log] 3\n"


def test_examples_execute_cleanly():
    """The shipped examples run under the stub environment (their
    seeded violations need an *adversarial* environment, which is the
    search's job)."""
    import pathlib
    import subprocess
    import sys

    root = pathlib.Path(__file__).resolve().parents[2]
    for name in ("py_worker_pool.py", "py_pinger.py"):
        proc = subprocess.run(
            [sys.executable, str(root / "examples" / name)],
            capture_output=True,
            text=True,
            timeout=60,
            env={"PYTHONPATH": str(root / "src")},
        )
        assert proc.returncode == 0, proc.stderr
