"""The concurrency model: module preludes → launch configurations."""

from repro.lang.python import description_from_python, lift_module

WORKERS = '''
"""Two workers, one producer, shared queue."""
from repro.pyruntime import Queue, env, join_all, log, spawn

QUOTA = 2
jobs = Queue(capacity=3)
results = Queue()

def producer(out, n):
    for i in range(n):
        out.put(env.next())

def worker(inbox, outbox, quota):
    for i in range(quota):
        v = inbox.get()
        log(v)
        outbox.put(v)

spawn(producer, jobs, 2 * QUOTA)
spawn(worker, jobs, results, QUOTA)
spawn(worker, jobs, results, QUOTA)

if __name__ == "__main__":
    join_all()
'''


class TestLiftModule:
    def test_queues_with_capacities(self):
        lifted = lift_module(WORKERS, "w.py")
        assert lifted.queues == {"jobs": 3, "results": 1}

    def test_process_naming_unique_vs_repeated(self):
        lifted = lift_module(WORKERS, "w.py")
        names = [(name, proc) for name, proc, _ in lifted.processes]
        assert names == [
            ("producer", "producer"),
            ("worker-1", "worker"),
            ("worker-2", "worker"),
        ]

    def test_constant_arithmetic_folds_in_spawn_args(self):
        lifted = lift_module(WORKERS, "w.py")
        assert lifted.processes[0][2] == [("object", "jobs"), 4]

    def test_object_bindings_merge_across_spawns(self):
        lifted = lift_module(WORKERS, "w.py")
        assert lifted.object_bindings == {
            "producer.out": ["jobs"],
            "worker.inbox": ["jobs"],
            "worker.outbox": ["results"],
        }

    def test_uses_log_detected(self):
        assert lift_module(WORKERS, "w.py").uses_log is True

    def test_import_aliases(self):
        source = (
            "from repro.pyruntime import Queue as Chan, spawn as launch, "
            "env as world\n"
            "q = Chan(2)\n"
            "def f(c):\n"
            "    c.put(world.ask())\n"
            "launch(f, q)\n"
        )
        lifted = lift_module(source, "alias.py")
        assert lifted.queues == {"q": 2}
        assert list(lifted.program.externs) == ["ask"]

    def test_externs_have_first_call_arity(self):
        source = (
            "from repro.pyruntime import spawn, env\n"
            "def f(a, b):\n"
            "    x = env.pair(a, b)\n"
            "    y = env.pair(b, a)\n"
            "spawn(f, 1, 2)\n"
        )
        lifted = lift_module(source, "e.py")
        assert len(lifted.program.externs["pair"].params) == 2


class TestDescription:
    def test_full_description_shape(self):
        description = description_from_python(WORKERS, "w.py")
        assert description["program"] == "w.py"
        assert description["language"] == "python"
        assert description["close"]["optimize"] is True
        assert description["close"]["object_bindings"] == {
            "producer.out": ["jobs"],
            "worker.inbox": ["jobs"],
            "worker.outbox": ["results"],
        }
        assert {"kind": "channel", "name": "jobs", "capacity": 3} in description["objects"]
        assert {"kind": "sink", "name": "log"} in description["objects"]
        assert description["processes"][1] == {
            "name": "worker-1",
            "proc": "worker",
            "args": [{"object": "jobs"}, {"object": "results"}, 2],
        }

    def test_no_log_no_sink(self):
        source = (
            "from repro.pyruntime import spawn\n"
            "def f():\n"
            "    x = 1\n"
            "spawn(f)\n"
        )
        description = description_from_python(source, "f.py")
        assert description["objects"] == []

    def test_description_is_json_round_trippable(self):
        import json

        description = description_from_python(WORKERS, "w.py")
        assert json.loads(json.dumps(description)) == description
