"""sysdesc loading of .py programs and the stricter loader errors."""

import json

import pytest

from repro.sysdesc import (
    DescriptionError,
    description_language,
    load_description,
    load_program,
    program_from_source,
    program_language,
)

PROGRAM = """\
from repro.pyruntime import Queue, env, spawn

q = Queue(1)

def f(c, n):
    for i in range(n):
        c.put(env.val())

def g(c, n):
    for i in range(n):
        x = c.get()

spawn(f, q, 2)
spawn(g, q, 2)
"""


class TestProgramLoading:
    def test_py_program_routes_through_python_frontend(self, tmp_path):
        path = tmp_path / "prog.py"
        path.write_text(PROGRAM)
        program = load_program(path)
        assert set(program.procs) == {"f", "g"}
        assert "val" in program.externs

    def test_unknown_extension_names_it(self, tmp_path):
        path = tmp_path / "prog.txt"
        path.write_text("proc main() { skip; }")
        with pytest.raises(DescriptionError) as err:
            load_program(path)
        message = str(err.value)
        assert "prog.txt" in message
        assert "'.txt'" in message
        assert ".rc" in message and ".py" in message

    def test_no_extension_named_too(self, tmp_path):
        path = tmp_path / "prog"
        path.write_text("proc main() { skip; }")
        with pytest.raises(DescriptionError, match="(none)"):
            load_program(path)

    def test_program_from_source_py(self):
        program = program_from_source("prog.py", PROGRAM)
        assert set(program.procs) == {"f", "g"}

    def test_program_from_source_default_rc(self):
        # Old embedded trace payloads have no suffix; RC stays the default.
        program = program_from_source("", "proc main() { skip; }")
        assert "main" in program.procs


class TestDescriptionLoading:
    def test_py_file_is_its_own_description(self, tmp_path):
        path = tmp_path / "svc.py"
        path.write_text(PROGRAM)
        description = load_description(path)
        assert description["program"] == "svc.py"
        assert description["language"] == "python"
        assert description["close"]["object_bindings"] == {
            "f.c": ["q"],
            "g.c": ["q"],
        }

    def test_py_frontend_errors_become_description_errors(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import os\n")
        with pytest.raises(DescriptionError) as err:
            load_description(path)
        assert "bad.py:1:1" in str(err.value)

    def test_unknown_description_extension_named(self, tmp_path):
        path = tmp_path / "desc.yaml"
        path.write_text("program: x.rc")
        with pytest.raises(DescriptionError) as err:
            load_description(path)
        assert "'.yaml'" in str(err.value)
        assert ".json" in str(err.value)

    def test_bad_json_names_the_file(self, tmp_path):
        path = tmp_path / "desc.json"
        path.write_text("{nope")
        with pytest.raises(DescriptionError, match="desc.json"):
            load_description(path)

    def test_json_description_gains_language(self, tmp_path):
        path = tmp_path / "desc.json"
        path.write_text(json.dumps({"program": "x.c", "processes": []}))
        assert load_description(path)["language"] == "c"
        path.write_text(json.dumps({"program": "x.rc", "processes": []}))
        assert load_description(path)["language"] == "rc"


class TestLanguageHelpers:
    @pytest.mark.parametrize(
        "name,language",
        [
            ("a.rc", "rc"),
            ("a.c", "c"),
            ("a.py", "python"),
            ("", "rc"),
            ("dir/prog.py", "python"),
            ("weird.txt", "rc"),
        ],
    )
    def test_program_language(self, name, language):
        assert program_language(name) == language

    def test_description_language_prefers_recorded(self):
        assert description_language({"language": "c", "program": "x.py"}) == "c"
        assert description_language({"program": "x.py"}) == "python"
        assert description_language({}) == "rc"


class TestObjectBindings:
    def test_bad_binding_key_rejected(self, tmp_path):
        from repro.sysdesc import system_from_description

        program = tmp_path / "p.rc"
        program.write_text("proc main() { skip; }")
        description = {
            "program": "p.rc",
            "close": {"object_bindings": {"noseparator": ["q"]}},
            "processes": [{"name": "P", "proc": "main", "args": []}],
        }
        with pytest.raises(DescriptionError, match="proc.param"):
            system_from_description(description, tmp_path)
