"""Documentation hygiene: every module, public class and public function
of the library carries a docstring (deliverable (e))."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        try:
            yield importlib.import_module(info.name)
        except ImportError:
            continue  # optional dependency missing (cfront without pycparser)


ALL_MODULES = list(_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if inspect.isclass(member) or inspect.isfunction(member):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module.__name__}: {undocumented}"


def test_examples_have_docstrings():
    import pathlib

    examples = pathlib.Path(__file__).parent.parent / "examples"
    for path in examples.glob("*.py"):
        text = path.read_text()
        assert text.lstrip().startswith(('"""', "#!")), path.name
        assert '"""' in text, f"{path.name} lacks a module docstring"
