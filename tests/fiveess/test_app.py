"""Tests for the 5ESS-style call-processing case study."""

import pytest

from tests.helpers import dfs_search
from repro.cfg import NodeKind
from repro.fiveess import build_app
from repro.lang.parser import parse_program


@pytest.fixture(scope="module")
def app():
    return build_app(n_lines=2, calls_per_line=1)


@pytest.fixture(scope="module")
def closed(app):
    return app.close()


class TestSourceGeneration:
    def test_source_parses(self, app):
        program = parse_program(app.source)
        expected = {
            "line_handler",
            "originate",
            "term_handler",
            "billing_daemon",
            "registration_server",
            "mobile_station",
            "handover_manager",
            "maintenance_daemon",
            "audit_daemon",
            "collect_digits",
        }
        assert expected <= set(program.procs)

    def test_open_interface_declared(self, app):
        program = parse_program(app.source)
        assert set(program.externs) == {
            "next_subscriber_event",
            "answer_decision",
            "radio_measurement",
            "maintenance_code",
        }

    def test_scales_with_lines(self):
        small = build_app(n_lines=1).source
        large = build_app(n_lines=4).source
        assert "setup_3" in large
        assert "setup_3" not in small

    def test_manual_stub_uses_bounded_toss(self, app):
        assert "VS_toss(1)" in app.source  # n_lines=2 -> toss over {0,1}


class TestClosing:
    def test_every_extern_call_eliminated(self, app, closed):
        for proc, cfg in closed.cfgs.items():
            for node in cfg.nodes_of_kind(NodeKind.CALL):
                assert node.callee not in (
                    "next_subscriber_event",
                    "answer_decision",
                    "radio_measurement",
                    "maintenance_code",
                ), f"{proc} kept env call {node.callee}"

    def test_env_branch_points_become_toss(self, app, closed):
        assert closed.proc_stats["line_handler"].toss_nodes >= 1
        assert closed.proc_stats["term_handler"].toss_nodes >= 1
        assert closed.proc_stats["handover_manager"].toss_nodes >= 1
        assert closed.proc_stats["maintenance_daemon"].toss_nodes >= 1

    def test_manual_stub_preserved(self, app, closed):
        # collect_digits is system code using VS_toss: untouched.
        cfg = closed.cfgs["collect_digits"]
        calls = [n.callee for n in cfg.nodes_of_kind(NodeKind.CALL)]
        assert "VS_toss" in calls

    def test_location_taint_erases_audit_subject(self, app, closed):
        from repro.lang import ast

        assert "location" in closed.analysis.tainted_objects
        cfg = closed.cfgs["audit_daemon"]
        asserts = [n for n in cfg.nodes_of_kind(NodeKind.CALL) if n.callee == "VS_assert"]
        erased = [n for n in asserts if isinstance(n.args[0], ast.AbstractLit)]
        kept = [n for n in asserts if not isinstance(n.args[0], ast.AbstractLit)]
        assert len(erased) == 1  # the `loc >= 0` check
        assert len(kept) == 2  # alarm and line_busy checks preserved

    def test_billing_assertions_preserved(self, app, closed):
        from repro.lang import ast

        cfg = closed.cfgs["billing_daemon"]
        asserts = [n for n in cfg.nodes_of_kind(NodeKind.CALL) if n.callee == "VS_assert"]
        assert asserts
        assert all(not isinstance(n.args[0], ast.AbstractLit) for n in asserts)

    def test_closing_reports_work(self, app, closed):
        assert closed.nodes_eliminated > 0
        assert closed.toss_nodes_added >= 4


class TestExploration:
    def test_system_builds_and_explores(self, app, closed):
        system = app.make_system(closed)
        report = dfs_search(system, max_depth=30, por=True, max_paths=300)
        assert report.states_visited > 0

    def test_seeded_deadlock_found(self, app, closed):
        system = app.make_system(closed, with_maintenance=False)
        report = dfs_search(
            system,
            max_depth=40,
            por=True,
            max_paths=4000,
            stop_when=lambda r: any(
                app.classify_deadlock(d.blocked) == "seeded-lock-order"
                for d in r.deadlocks
            ),
        )
        classes = {app.classify_deadlock(d.blocked) for d in report.deadlocks}
        assert "seeded-lock-order" in classes

    def test_deadlock_absent_without_seed(self):
        safe = build_app(n_lines=2, seed_deadlock=False)
        closed = safe.close()
        system = safe.make_system(closed, with_maintenance=False)
        report = dfs_search(system, max_depth=40, por=True, max_paths=4000)
        classes = {safe.classify_deadlock(d.blocked) for d in report.deadlocks}
        assert "seeded-lock-order" not in classes

    def test_billing_violation_found_in_core_flow(self, app, closed):
        system = app.make_system(closed, with_mobility=False, with_maintenance=False)
        report = dfs_search(
            system,
            max_depth=60,
            por=True,
            max_paths=50_000,
            time_budget=60,
            stop_when=lambda r: bool(r.violations),
        )
        assert report.violations

    def test_billing_invariant_holds_without_seed(self):
        safe = build_app(n_lines=2, seed_billing_bug=False)
        closed = safe.close()
        system = safe.make_system(closed, with_mobility=False, with_maintenance=False)
        report = dfs_search(
            system, max_depth=60, por=True, max_paths=8_000, time_budget=40
        )
        assert not report.violations

    def test_quiescence_classification(self, app):
        assert app.classify_deadlock(("term_0", "billing")) == "quiescence"
        assert (
            app.classify_deadlock(("term_0", "handover_1")) == "seeded-lock-order"
        )


class TestCallForwarding:
    def test_forwarding_procs_generated(self, app):
        from repro.lang.parser import parse_program

        program = parse_program(app.source)
        assert "read_forward" in program.procs
        assert "provisioning_daemon" in program.procs

    def test_forwarding_teardown_leak_found(self, app, closed):
        system = app.make_system(
            closed,
            with_mobility=False,
            with_maintenance=False,
            with_forwarding=True,
        )
        report = dfs_search(
            system,
            max_depth=70,
            por=True,
            max_paths=20_000,
            time_budget=90,
            stop_when=lambda r: any(
                app.classify_event(d) == "forwarding-teardown-leak"
                for d in r.deadlocks
            ),
        )
        classes = {app.classify_event(d) for d in report.deadlocks}
        assert "forwarding-teardown-leak" in classes

    def test_no_leak_without_provisioning(self, app, closed):
        system = app.make_system(
            closed,
            with_mobility=False,
            with_maintenance=False,
            with_forwarding=False,
        )
        report = dfs_search(system, max_depth=70, por=True, max_paths=8_000, time_budget=60)
        classes = {app.classify_event(d) for d in report.deadlocks}
        assert "forwarding-teardown-leak" not in classes

    def test_classify_event_details(self, app):
        from repro.verisoft.results import DeadlockEvent, Trace

        event = DeadlockEvent(
            Trace((), ()),
            ("term_1", "billing"),
            (("term_1", "recv", "teardown_1"), ("billing", "recv", "billing")),
        )
        assert app.classify_event(event) == "forwarding-teardown-leak"
        quiescent = DeadlockEvent(
            Trace((), ()),
            ("term_1", "billing"),
            (("term_1", "recv", "setup_1"), ("billing", "recv", "billing")),
        )
        assert app.classify_event(quiescent) == "quiescence"
