"""The checkpoint-reusing oracle substrate (IncrementalReplayer).

Contract: ``IncrementalReplayer(system).run_choices(c)`` is observably
identical to ``run_choices(system, c)`` for *any* sequence of queries —
same ok/applied/signatures/steps on every candidate, regardless of how
the candidates relate — while executing only the suffix past the common
prefix with the previous query.  The shrink pipeline wires it in on
journalable systems and reports the reuse telemetry.
"""

import pytest

from repro import SearchOptions, run_search
from repro.counterex import IncrementalReplayer, run_choices, shrink
from repro.counterex.triage import event_signature
from repro.verisoft.results import ScheduleChoice, TossChoice

from .conftest import (
    FIG2_SRC,
    deadlock_system,
    figure_system,
    noisy_assert_system,
)


def first_event(system):
    report = run_search(system, SearchOptions(max_depth=60, max_events=100))
    return next(e for e in report.all_events() if e.trace.choices)


def assert_same_outcome(plain, incremental):
    assert plain.ok == incremental.ok
    assert plain.applied == incremental.applied
    assert plain.signatures() == incremental.signatures()
    assert [str(s) for s in plain.trace.steps] == [
        str(s) for s in incremental.trace.steps
    ]
    if not plain.ok:
        assert plain.mismatch.index == incremental.mismatch.index
        assert plain.mismatch.reason == incremental.mismatch.reason


def shrink_like_candidates(choices):
    """The query mix ddmin generates: the full sequence, prefixes,
    drop-one complements, then the full sequence again (memo-style
    revisit after the live run moved elsewhere)."""
    candidates = [choices]
    for k in range(len(choices)):
        candidates.append(choices[:k])
        candidates.append(choices[:k] + choices[k + 1 :])
    candidates.append(choices)
    return candidates


class TestEquivalence:
    @pytest.mark.parametrize("build", [deadlock_system, noisy_assert_system])
    def test_matches_plain_replay_on_candidate_mix(self, build):
        event = first_event(build())
        incremental = IncrementalReplayer(build())
        for candidate in shrink_like_candidates(event.trace.choices):
            assert_same_outcome(
                run_choices(build(), candidate),
                incremental.run_choices(candidate),
            )
        assert incremental.choices_reused > 0
        assert incremental.restores > 0

    def test_assertion_violations_recorded_in_reused_prefix(self):
        """A violation that fired inside the retained prefix must appear
        in later outcomes without re-executing that prefix."""
        build = noisy_assert_system
        event = first_event(build())
        choices = event.trace.choices
        incremental = IncrementalReplayer(build())
        first = incremental.run_choices(choices)
        assert event_signature(event) in first.signatures()
        # Extending the sequence reuses the violating prefix wholesale.
        extended = choices + (ScheduleChoice("n"),)
        applied_before = incremental.choices_applied
        second = incremental.run_choices(extended)
        assert event_signature(event) in second.signatures()
        assert incremental.choices_applied == applied_before + 1
        assert_same_outcome(run_choices(build(), extended), second)

    def test_rejected_candidate_leaves_live_run_usable(self):
        """A mismatching candidate must not corrupt the retained state:
        the very next query still answers correctly."""
        build = deadlock_system
        event = first_event(build())
        choices = event.trace.choices
        incremental = IncrementalReplayer(build())
        bogus = choices[:2] + (ScheduleChoice("ghost"),) + choices[2:]
        assert not incremental.run_choices(bogus).ok
        good = incremental.run_choices(choices)
        assert good.ok
        assert event_signature(event) in good.signatures()

    def test_toss_variants_share_the_pre_toss_prefix(self):
        system = figure_system(FIG2_SRC, "p")
        event = first_event(system)
        choices = event.trace.choices
        toss_at = next(
            i for i, c in enumerate(choices) if isinstance(c, TossChoice)
        )
        incremental = IncrementalReplayer(figure_system(FIG2_SRC, "p"))
        incremental.run_choices(choices)
        variant = (
            choices[:toss_at]
            + (TossChoice(choices[toss_at].process, 0),)
            + choices[toss_at + 1 :]
        )
        reused_before = incremental.choices_reused
        outcome = incremental.run_choices(variant)
        assert incremental.choices_reused - reused_before == toss_at
        assert_same_outcome(
            run_choices(figure_system(FIG2_SRC, "p"), variant), outcome
        )

    def test_requires_journalable_system(self, monkeypatch):
        system = deadlock_system()
        monkeypatch.setattr(type(system), "journalable", lambda self: False)
        with pytest.raises(ValueError, match="journalable"):
            IncrementalReplayer(system)


class TestShrinkIntegration:
    def test_shrink_uses_incremental_oracle_and_reports_reuse(self):
        # Pad the minimal reproducer with irrelevant noise scheduling so
        # ddmin has real work to do (and candidates share real prefixes).
        core = first_event(noisy_assert_system()).trace.choices
        padded = core[:1] + (ScheduleChoice("n"),) * 3 + core[1:]
        outcome = run_choices(noisy_assert_system(), padded)
        assert outcome.ok and outcome.events
        event = outcome.events[0]
        result = shrink(noisy_assert_system(), event)
        assert result.incremental
        assert result.oracle_choices_reused > 0
        assert "reused from checkpoints" in result.describe()
        # The minimized trace still reproduces on a *plain* replay.
        outcome = run_choices(noisy_assert_system(), result.trace.choices)
        assert outcome.ok
        assert event_signature(event) in outcome.signatures()

    def test_shrink_result_unchanged_by_oracle_substrate(self, monkeypatch):
        """Checkpoint reuse is a pure speedup: forcing the plain oracle
        must give the identical minimal trace and query count."""
        event = first_event(noisy_assert_system())
        fast = shrink(noisy_assert_system(), event)

        from repro.runtime.system import System as RuntimeSystem

        monkeypatch.setattr(RuntimeSystem, "journalable", lambda self: False)
        slow = shrink(noisy_assert_system(), event)
        assert not slow.incremental
        assert slow.oracle_choices_reused == 0
        assert slow.trace.choices == fast.trace.choices
        assert slow.oracle_runs == fast.oracle_runs
