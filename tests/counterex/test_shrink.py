"""Minimization: ddmin, toss lowering, idempotence, failure modes."""

import pytest

from repro import SearchOptions, System, run_search
from repro.counterex import ShrinkError, ddmin, shrink, shrink_choices
from repro.counterex.replay import run_choices
from repro.counterex.triage import event_signature
from repro.verisoft.results import TossChoice

from .conftest import (
    FIG2_SRC,
    deadlock_system,
    figure_system,
    noisy_assert_system,
)


def first_event(system):
    report = run_search(system, SearchOptions(max_depth=60, max_events=100))
    return next(e for e in report.all_events() if e.trace.choices)


class TestDdmin:
    def test_finds_exact_minimal_subset(self):
        # Only elements {2, 5, 8} matter: ddmin must isolate exactly them.
        needed = {2, 5, 8}
        result = ddmin(
            tuple(range(10)), lambda items: needed <= set(items)
        )
        assert set(result) == needed

    def test_keeps_order(self):
        result = ddmin(tuple(range(8)), lambda items: {1, 6} <= set(items))
        assert result == (1, 6)

    def test_single_element(self):
        assert ddmin((7,), lambda items: True) == (7,)

    def test_result_is_one_minimal(self):
        needed = {0, 3, 4, 9}
        test = lambda items: needed <= set(items)
        result = ddmin(tuple(range(12)), test)
        for index in range(len(result)):
            assert not test(result[:index] + result[index + 1 :])


class TestShrink:
    def test_noise_stripped_from_violation(self):
        """The deliverable's headline: shrinking drops irrelevant
        scheduling, producing a strictly shorter trace."""
        from repro.verisoft.results import ScheduleChoice

        # A deliberately wasteful reproducer: answer the victim's toss,
        # then run the noise process to completion before letting the
        # victim violate.  (Pending tosses must be answered first, so
        # the padding goes after the toss choice.)
        padding = (ScheduleChoice("n"),) * 3
        core = first_event(noisy_assert_system()).trace.choices
        outcome = run_choices(
            noisy_assert_system(), core[:1] + padding + core[1:]
        )
        assert outcome.ok and outcome.events
        event = outcome.events[0]
        assert any(c.process == "n" for c in event.trace.choices)
        result = shrink(noisy_assert_system(), event)
        assert result.shrunk_length < result.original_length
        assert not any(c.process == "n" for c in result.trace.choices)
        assert event_signature(result.event) == event_signature(event)
        # The minimal violation: answer the toss, run the victim.
        assert result.shrunk_length == 2

    def test_shrunk_trace_replays(self, fig2_system):
        event = first_event(fig2_system)
        result = shrink(figure_system(FIG2_SRC, "p"), event)
        outcome = run_choices(
            figure_system(FIG2_SRC, "p"), result.trace.choices
        )
        assert outcome.ok
        assert event_signature(event) in outcome.signatures()

    def test_idempotent(self, fig2_system):
        """Deliverable: shrinking a shrunk trace is a no-op."""
        event = first_event(fig2_system)
        once = shrink(figure_system(FIG2_SRC, "p"), event)
        twice = shrink(figure_system(FIG2_SRC, "p"), once.event)
        assert twice.trace.choices == once.trace.choices
        assert twice.shrunk_length == twice.original_length

    def toss_system(self):
        # VS_assert(t == 0) over a toss of 0..3: values 1..3 all violate
        # with the same signature, so minimization must settle on 1.
        system = System(
            "proc main() { var t; t = VS_toss(3); VS_assert(t == 0); }"
        )
        system.add_process("p", "main", [])
        return system

    def test_toss_values_lowered(self):
        from repro.verisoft.results import ScheduleChoice

        start = (TossChoice("p", 3), ScheduleChoice("p"))
        first = run_choices(self.toss_system(), start)
        assert first.events, "toss=3 should violate"
        signature = event_signature(first.events[0])

        minimal, _ = shrink_choices(self.toss_system(), start, signature)
        tosses = [c for c in minimal if isinstance(c, TossChoice)]
        assert [t.value for t in tosses] == [1]

    def test_budget_exhaustion_returns_valid_reproducer(self):
        system = noisy_assert_system()
        event = first_event(system)
        result = shrink(noisy_assert_system(), event, max_oracle_runs=1)
        # No minimization happened, but the result still reproduces.
        assert result.shrunk_length == result.original_length
        assert event_signature(result.event) == event_signature(event)

    def test_non_reproducing_trace_raises(self):
        event = first_event(deadlock_system())
        fixed = System(
            """
            proc grab(first, second) {
                sem_p(first); sem_p(second); sem_v(second); sem_v(first);
            }
            """
        )
        s1 = fixed.add_semaphore("s1", 1)
        s2 = fixed.add_semaphore("s2", 1)
        fixed.add_process("a", "grab", [s1, s2])
        fixed.add_process("b", "grab", [s1, s2])
        with pytest.raises(ShrinkError, match="does not reproduce"):
            shrink(fixed, event)

    def test_describe_reports_lengths_and_cost(self):
        event = first_event(deadlock_system())
        result = shrink(deadlock_system(), event)
        text = result.describe()
        assert f"-> {result.shrunk_length} choices" in text
        assert "oracle runs" in text
