"""The versioned trace format: round-trip, validation, version policy."""

import json

import pytest

from repro import SearchOptions, run_search
from repro.counterex import (
    FORMAT,
    VERSION,
    TraceFile,
    TraceFormatError,
    load_trace,
    save_report_traces,
    save_trace,
    trace_file_for_event,
    verify_trace,
)
from repro.counterex.traceio import choices_from_json, choices_to_json
from repro.verisoft.results import (
    AssertionViolationEvent,
    ScheduleChoice,
    TossChoice,
    Trace,
)

from .conftest import DEADLOCK_SRC, FIG2_SRC, FIG3_SRC, deadlock_system, figure_system


def first_event(system):
    report = run_search(system, SearchOptions(max_depth=60, max_events=100))
    events = [e for e in report.all_events() if e.trace.choices]
    assert events, "expected the system to violate"
    return report, events[0]


class TestChoiceSerialization:
    def test_round_trip(self):
        choices = (ScheduleChoice("p"), TossChoice("p", 3), ScheduleChoice("q"))
        assert choices_from_json(choices_to_json(choices)) == choices

    def test_compact_encoding(self):
        payload = choices_to_json((ScheduleChoice("p"), TossChoice("q", 2)))
        assert payload == [["s", "p"], ["t", "q", 2]]

    def test_unknown_tag_rejected(self):
        with pytest.raises(TraceFormatError):
            choices_from_json([["x", "p"]])


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source, proc", [(FIG2_SRC, "p"), (FIG3_SRC, "q")], ids=["fig2", "fig3"]
    )
    def test_figure_violation_survives_save_load_replay(
        self, tmp_path, source, proc
    ):
        """Deliverable: save -> load -> replay equality on the Figure 2/3
        violations, toss choices included."""
        system = figure_system(source, proc)
        report, event = first_event(system)
        trace_file = trace_file_for_event(event, system=system, report=report)
        path = save_trace(tmp_path / "trace.json", trace_file)

        loaded = load_trace(path)
        assert loaded.trace == event.trace  # choices AND steps, exactly
        assert loaded.signature() == trace_file.signature()
        assert loaded.fingerprint == system.fingerprint()
        assert any(isinstance(c, TossChoice) for c in loaded.trace.choices)

        verdict = verify_trace(figure_system(source, proc), loaded)
        assert verdict.ok
        assert verdict.fingerprint_matched is True

    def test_rebuilt_event_matches_original(self, tmp_path):
        system = deadlock_system()
        report, event = first_event(system)
        path = save_trace(
            tmp_path / "d.json", trace_file_for_event(event, system=system)
        )
        assert load_trace(path).event() == event

    def test_search_metadata_recorded(self, tmp_path):
        system = deadlock_system()
        report, event = first_event(system)
        trace_file = trace_file_for_event(event, system=system, report=report)
        assert trace_file.search["strategy"] == "dfs"
        assert trace_file.search["options"]["max_depth"] == 60


class TestValidation:
    def doc(self, **overrides):
        system = deadlock_system()
        _, event = first_event(system)
        doc = trace_file_for_event(event, system=system).to_json()
        doc.update(overrides)
        return doc

    def test_format_tag_required(self):
        with pytest.raises(TraceFormatError, match="format"):
            TraceFile.from_json(self.doc(format="something-else"))

    def test_unknown_version_rejected(self):
        with pytest.raises(TraceFormatError, match="version"):
            TraceFile.from_json(self.doc(version=VERSION + 1))

    def test_unknown_keys_ignored(self):
        # Version policy: new optional keys may appear without a bump.
        loaded = TraceFile.from_json(self.doc(future_extension={"x": 1}))
        assert loaded.version == VERSION

    def test_missing_choices_rejected(self):
        doc = self.doc()
        del doc["choices"]
        with pytest.raises(TraceFormatError):
            TraceFile.from_json(doc)

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json at all {")
        with pytest.raises(TraceFormatError, match="JSON"):
            load_trace(path)

    def test_traceless_event_rejected(self):
        event = AssertionViolationEvent(Trace((), ()), "p", "main", 1)
        with pytest.raises(ValueError, match="no trace"):
            trace_file_for_event(event)


class TestSaveReportTraces:
    def test_one_file_per_violation_in_stable_order(self, tmp_path):
        system = deadlock_system()
        report = run_search(system, SearchOptions(max_depth=40, max_events=100))
        written = save_report_traces(tmp_path / "traces", report, system=system)
        assert written
        assert [p.name for p in written] == sorted(p.name for p in written)
        assert all(p.name.startswith("deadlock-") for p in written)
        assert json.loads(written[0].read_text())["format"] == FORMAT

    def test_written_traces_all_replay(self, tmp_path):
        system = deadlock_system()
        report = run_search(system, SearchOptions(max_depth=40, max_events=100))
        for path in save_report_traces(tmp_path, report, system=system):
            assert verify_trace(deadlock_system(), load_trace(path)).ok

    def test_system_payload_embedded(self, tmp_path):
        system = deadlock_system()
        report = run_search(system, SearchOptions(max_depth=40))
        payload = {"program_source": DEADLOCK_SRC, "description": {"x": 1}}
        written = save_report_traces(
            tmp_path, report, system=system, system_payload=payload
        )
        assert load_trace(written[0]).system == payload
