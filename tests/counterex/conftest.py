"""Shared system builders for the counterexample-engine tests.

The Figure 2/3 programs from the paper, seeded with an assertion so the
closed versions actually *violate* something (the assertion fires only
on the odd-parity toss), plus the classic lock-order deadlock pair and
a noisy variant whose irrelevant scheduling ddmin must strip.
"""

import pytest

from repro import System, close_program

# Figure 2's p, with a seeded assertion on a *concrete* counter (an
# env-dependent assert argument would be abstracted away by closing).
# After closing, the branch on y is driven by a VS_toss, so the
# violation (three odd iterations) depends on toss values — exercising
# toss round-trip and shrinking.
FIG2_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    var odds = 0;
    while (cnt < 3) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); odds = odds + 1; }
        cnt = cnt + 1;
    }
    VS_assert(odds < 3);
}
"""

# Figure 3's q (y recomputed each iteration), seeded the same way but
# asserting inside the loop.
FIG3_SRC = """
proc q(x) {
    var cnt = 0;
    var odds = 0;
    while (cnt < 3) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); odds = odds + 1; }
        VS_assert(odds < 2);
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""

DEADLOCK_SRC = """
proc grab(first, second) {
    sem_p(first);
    sem_p(second);
    sem_v(second);
    sem_v(first);
}
"""

# An assertion violation next to a pure-noise bystander.  Noise steps
# interleaved before the assertion are irrelevant to it, so shrinking
# must drop them.  (A *deadlock* would not do: the paper's global
# deadlock needs every process stuck or finished, which makes the
# bystander's completion part of the counterexample.)
NOISY_ASSERT_SRC = """
proc victim() {
    var t;
    t = VS_toss(3);
    VS_assert(t == 0);
}
proc noise() {
    send(out, 'a');
    send(out, 'b');
    send(out, 'c');
}
"""


def figure_system(source, proc):
    """Close a Figure 2/3 program and wrap it in a runnable system."""
    closed = close_program(source, env_params={proc: ["x"]})
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return system


def deadlock_system():
    """The classic lock-order deadlock pair."""
    system = System(DEADLOCK_SRC)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


def noisy_assert_system():
    """A tossing victim that can violate, plus an unrelated noise
    process whose steps shrinking must strip."""
    system = System(NOISY_ASSERT_SRC)
    system.add_env_sink("out")
    system.add_process("v", "victim", [])
    system.add_process("n", "noise", [])
    return system


@pytest.fixture()
def fig2_system():
    return figure_system(FIG2_SRC, "p")


@pytest.fixture()
def fig3_system():
    return figure_system(FIG3_SRC, "q")
