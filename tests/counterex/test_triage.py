"""Triage: signatures, grouping, rendering, and parallel parity."""


from repro import SearchOptions, run_search
from repro.counterex import describe_groups, event_signature, group_events
from repro.counterex.triage import signature_from_json, signature_to_json
from repro.verisoft.results import (
    AssertionViolationEvent,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    Trace,
)

from .conftest import FIG3_SRC, deadlock_system, figure_system


def t(n=1):
    from repro.verisoft.results import ScheduleChoice

    return Trace(tuple(ScheduleChoice("p") for _ in range(n)), ())


class TestSignatures:
    def test_signature_ignores_trace(self):
        a = DeadlockEvent(t(2), ("a", "b"), (("a", "sem_p", "s2"),))
        b = DeadlockEvent(t(9), ("a", "b"), (("a", "sem_p", "s2"),))
        assert event_signature(a) == event_signature(b)

    def test_signature_orders_blocked_set(self):
        a = DeadlockEvent(t(), ("b", "a"), (("b", "x", None), ("a", "y", None)))
        b = DeadlockEvent(t(), ("a", "b"), (("a", "y", None), ("b", "x", None)))
        assert event_signature(a) == event_signature(b)

    def test_kinds_are_distinct(self):
        events = [
            DeadlockEvent(t(), ("p",), ()),
            AssertionViolationEvent(t(), "p", "main", 4),
            CrashEvent(t(), "p", "boom"),
            DivergenceEvent(t(), "p"),
        ]
        assert len({event_signature(e) for e in events}) == 4

    def test_signatures_are_hashable_and_json_stable(self):
        event = DeadlockEvent(t(), ("a",), (("a", "sem_p", "s1"),))
        signature = event_signature(event)
        hash(signature)
        assert signature_from_json(signature_to_json(signature)) == signature

    def test_search_events_of_one_defect_share_a_signature(self, fig3_system):
        report = run_search(
            fig3_system, SearchOptions(max_depth=60, max_events=100)
        )
        signatures = {event_signature(e) for e in report.violations}
        assert len(report.violations) > 1
        assert len(signatures) == 1


class TestGrouping:
    def test_first_seen_order_and_counts(self):
        d1 = DeadlockEvent(t(3), ("a",), (("a", "x", None),))
        v1 = AssertionViolationEvent(t(2), "p", "main", 7)
        d2 = DeadlockEvent(t(1), ("a",), (("a", "x", None),))
        groups = group_events([d1, v1, d2])
        assert [g.kind for g in groups] == ["deadlock", "assertion"]
        assert [g.count for g in groups] == [2, 1]

    def test_representative_is_shortest_traced_event(self):
        long = DeadlockEvent(t(5), ("a",), ())
        short = DeadlockEvent(t(2), ("a",), ())
        traceless = DeadlockEvent(Trace((), ()), ("a",), ())
        group = group_events([long, traceless, short])[0]
        assert group.representative is short

    def test_traceless_fallback(self):
        only = DeadlockEvent(Trace((), ()), ("a",), ())
        assert group_events([only])[0].representative is only

    def test_report_triage_and_summary(self, fig3_system):
        report = run_search(
            fig3_system, SearchOptions(max_depth=60, max_events=100)
        )
        groups = report.triage()
        assert len(groups) == 1
        assert "groups=1" in report.summary()

    def test_describe_groups_phrase(self):
        d = DeadlockEvent(t(1), ("a",), (("a", "x", None),))
        v = AssertionViolationEvent(t(1), "p", "main", 7)
        one = describe_groups(group_events([d]))
        assert one.startswith("1 violation in 1 distinct group")
        many = describe_groups(group_events([d, d, v]))
        assert many.startswith("3 violations in 2 distinct groups")
        assert "seen 2 times" in many


class TestParallelParity:
    def test_jobs_1_and_jobs_4_triage_identically(self):
        """Deliverable: sequential and parallel searches of the same
        space produce identical violation groups."""
        options = SearchOptions(
            strategy="parallel", max_depth=60, max_events=100
        )

        def groups_with(jobs):
            system = figure_system(FIG3_SRC, "q")
            report = run_search(system, options, jobs=jobs)
            return report.triage()

        sequential = groups_with(1)
        parallel = groups_with(4)
        assert [g.signature for g in sequential] == [
            g.signature for g in parallel
        ]
        assert [g.count for g in sequential] == [g.count for g in parallel]
        assert describe_groups(sequential) == describe_groups(parallel)
        # Representatives agree too: same minimal reproducer either way.
        assert [g.representative.trace for g in sequential] == [
            g.representative.trace for g in parallel
        ]

    def test_deadlock_parity(self):
        options = SearchOptions(
            strategy="parallel", max_depth=40, max_events=100
        )
        sequential = run_search(deadlock_system(), options, jobs=1).triage()
        parallel = run_search(deadlock_system(), options, jobs=4).triage()
        assert describe_groups(sequential) == describe_groups(parallel)
