"""Replay from disk: reproduction, and every divergence diagnosis."""


from repro import SearchOptions, System, run_search
from repro.counterex import (
    load_trace,
    run_choices,
    reproduces,
    save_trace,
    trace_file_for_event,
    verify_trace,
)
from repro.counterex.triage import event_signature
from repro.verisoft import ReplayMismatch
from repro.verisoft.results import ScheduleChoice, TossChoice

from .conftest import DEADLOCK_SRC, FIG2_SRC, deadlock_system, figure_system


def first_event(system, **overrides):
    options = SearchOptions(max_depth=60, max_events=100)
    report = run_search(system, options, **overrides)
    return next(e for e in report.all_events() if e.trace.choices)


def no_deadlock_system():
    """Both processes take the locks in the same order: no deadlock."""
    system = System(DEADLOCK_SRC)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s1, s2])
    return system


class TestRunChoices:
    def test_reproduces_explorer_event_exactly(self):
        event = first_event(deadlock_system())
        outcome = run_choices(deadlock_system(), event.trace.choices)
        assert outcome.ok
        assert event_signature(event) in outcome.signatures()
        # The reconstructed trace matches the explorer's recording.
        matching = next(
            e for e in outcome.events
            if event_signature(e) == event_signature(event)
        )
        assert matching.trace == event.trace

    def test_assertion_events_collected_mid_run(self, fig2_system):
        event = first_event(fig2_system)
        outcome = run_choices(figure_system(FIG2_SRC, "p"), event.trace.choices)
        assert [event_signature(e) for e in outcome.events] == [
            event_signature(event)
        ]

    def test_mismatch_never_raises(self):
        outcome = run_choices(deadlock_system(), (ScheduleChoice("nope"),))
        assert not outcome.ok
        assert outcome.applied == 0
        assert "no such process" in outcome.mismatch.reason

    def test_reproduces_oracle(self):
        event = first_event(deadlock_system())
        signature = event_signature(event)
        assert reproduces(deadlock_system(), event.trace.choices, signature)
        assert not reproduces(deadlock_system(), (), signature)


class TestReplayMismatch:
    def test_bad_toss_value_diagnosed(self, fig2_system):
        event = first_event(fig2_system)
        choices = list(event.trace.choices)
        index = next(
            i for i, c in enumerate(choices) if isinstance(c, TossChoice)
        )
        choices[index] = TossChoice(choices[index].process, 99)
        outcome = run_choices(figure_system(FIG2_SRC, "p"), tuple(choices))
        assert not outcome.ok
        assert isinstance(outcome.mismatch, ReplayMismatch)
        assert outcome.mismatch.index == index


class TestVerifyTrace:
    def trace_file(self, tmp_path):
        system = deadlock_system()
        event = first_event(system)
        path = save_trace(
            tmp_path / "t.json", trace_file_for_event(event, system=system)
        )
        return load_trace(path)

    def test_reproduced(self, tmp_path):
        verdict = verify_trace(deadlock_system(), self.trace_file(tmp_path))
        assert verdict.status == "reproduced"
        assert verdict.ok
        assert verdict.fingerprint_matched is True
        assert "reproduced" in verdict.detail

    def test_diverged_with_fingerprint_mismatch(self, tmp_path):
        # Replaying on the *fixed* program: process b's first sem_p now
        # grabs s1, so the recorded schedule diverges — and the verdict
        # explains it via the changed fingerprint.
        verdict = verify_trace(no_deadlock_system(), self.trace_file(tmp_path))
        assert verdict.status in ("diverged", "no-violation")
        assert not verdict.ok
        assert verdict.fingerprint_matched is False
        assert "fingerprint mismatch" in verdict.detail

    def test_no_violation_when_bug_fixed(self, tmp_path, fig2_system):
        event = first_event(fig2_system)
        trace_file = trace_file_for_event(event, system=fig2_system)
        # Same system shape, but drop the final toss choices: the
        # prefix replays cleanly and nothing fires.
        prefix = trace_file.trace.choices[:1]
        import dataclasses

        from repro.verisoft.results import Trace

        stale = dataclasses.replace(trace_file, trace=Trace(prefix, ()))
        verdict = verify_trace(figure_system(FIG2_SRC, "p"), stale)
        assert verdict.status == "no-violation"
        assert "no violation" in verdict.detail

    def test_different_violation(self, tmp_path):
        trace_file = self.trace_file(tmp_path)
        # Tamper with the recorded signature: replay still deadlocks,
        # but not with the expected identity.
        trace_file.violation["signature"] = ["deadlock", [["x", "sem_p", "y"]]]
        verdict = verify_trace(deadlock_system(), trace_file)
        assert verdict.status == "different-violation"
        assert "different violation" in verdict.detail


class TestFingerprintDiagnosis:
    """The fingerprint is the trace's provenance anchor; every verdict
    must cross-check it and say what the combination means."""

    def _trace_file(self, system):
        event = first_event(system)
        return trace_file_for_event(event, system=system)

    def test_tampered_fingerprint_but_bug_reproduces(self):
        # The embedded fingerprint differs, yet replay still finds the
        # recorded violation: the verdict is "reproduced" (ok), but the
        # mismatch must be called out — the edit did not affect the bug.
        import dataclasses

        trace_file = self._trace_file(deadlock_system())
        tampered = dataclasses.replace(trace_file, fingerprint="0" * 16)
        verdict = verify_trace(deadlock_system(), tampered)
        assert verdict.status == "reproduced"
        assert verdict.ok
        assert verdict.fingerprint_matched is False
        assert "fingerprint mismatch" in verdict.detail
        assert trace_file.fingerprint != "0" * 16  # the tamper took

    def test_matching_fingerprint_with_divergence_is_corruption(self):
        # Fingerprint says "same system" but the choices do not apply:
        # the diagnosis must escalate to trace corruption, not blame a
        # program change.
        import dataclasses

        from repro.verisoft.results import Trace

        trace_file = self._trace_file(deadlock_system())
        broken = (ScheduleChoice("ghost-process"), *trace_file.trace.choices)
        corrupted = dataclasses.replace(
            trace_file, trace=Trace(broken, ())
        )
        verdict = verify_trace(deadlock_system(), corrupted)
        assert verdict.status == "diverged"
        assert verdict.fingerprint_matched is True
        assert "replay diverged at choice 0" in verdict.detail
        assert "trace corruption" in verdict.detail

    def test_fingerprintless_trace_reports_none(self):
        trace_file = self._trace_file(deadlock_system())
        import dataclasses

        bare = dataclasses.replace(trace_file, fingerprint=None)
        verdict = verify_trace(deadlock_system(), bare)
        assert verdict.status == "reproduced"
        assert verdict.fingerprint_matched is None
        assert "fingerprint" not in verdict.detail
