"""Tests for System/Run: multi-process wiring and scheduler interface."""

import pytest

from repro import System
from repro.runtime.errors import ObjectError
from repro.runtime.process import ProcessStatus

PINGPONG = """
proc ping(n) {
    var i = 0;
    while (i < n) {
        send(ab, i);
        var r;
        r = recv(ba);
        i = i + 1;
    }
}
proc pong(n) {
    var i = 0;
    while (i < n) {
        var v;
        v = recv(ab);
        send(ba, v + 100);
        i = i + 1;
    }
}
"""


def pingpong_system(n=2):
    system = System(PINGPONG)
    system.add_channel("ab", capacity=1)
    system.add_channel("ba", capacity=1)
    system.add_process("ping", "ping", [n])
    system.add_process("pong", "pong", [n])
    return system


def drive(run, max_steps=1000):
    run.start_processes()
    steps = 0
    while steps < max_steps:
        steps += 1
        pending = run.toss_pending()
        if pending is not None:
            run.answer_toss(pending, 0)
            continue
        enabled = run.enabled_processes()
        if not enabled:
            return steps
        run.execute_visible(enabled[0])
    raise AssertionError("did not quiesce")


class TestDeclarationChecks:
    def test_duplicate_object_rejected(self):
        system = System("proc main() { }")
        system.add_channel("c")
        with pytest.raises(ObjectError):
            system.add_semaphore("c")

    def test_duplicate_process_rejected(self):
        system = System("proc main() { }")
        system.add_process("p", "main")
        with pytest.raises(ObjectError):
            system.add_process("p", "main")

    def test_unknown_procedure_rejected(self):
        system = System("proc main() { }")
        with pytest.raises(ObjectError):
            system.add_process("p", "nope")

    def test_arity_mismatch_rejected(self):
        system = System("proc main(a, b) { }")
        with pytest.raises(ObjectError):
            system.add_process("p", "main", [1])

    def test_empty_system_cannot_start(self):
        system = System("proc main() { }")
        with pytest.raises(ObjectError):
            system.start()

    def test_process_specs_exposed(self):
        system = System("proc main(a) { }")
        system.add_process("p", "main", [1])
        assert system.process_specs == [("p", "main", (1,))]


class TestRunLifecycle:
    def test_pingpong_runs_to_completion(self):
        run = pingpong_system().start()
        drive(run)
        assert run.all_terminated()

    def test_runs_are_independent(self):
        system = pingpong_system()
        run1 = system.start()
        run2 = system.start()
        drive(run1)
        # run2 is untouched by run1 having executed.
        assert run2.processes[0].status is None
        drive(run2)
        assert run2.all_terminated()

    def test_double_start_rejected(self):
        run = pingpong_system().start()
        run.start_processes()
        with pytest.raises(RuntimeError):
            run.start_processes()

    def test_object_ref_launch_args(self):
        source = """
        proc worker(inbox) {
            var v;
            v = recv(inbox);
            send(out, v);
        }
        """
        system = System(source)
        ref = system.add_channel("jobs", capacity=1)
        system.add_env_sink("out")
        system.add_process("w", "worker", [ref])
        run = system.start()
        run.start_processes()
        # Feed the channel directly, then drive.
        run.objects["jobs"].perform("send", (7,))
        while run.enabled_processes():
            run.execute_visible(run.enabled_processes()[0])
        assert run.env_outputs("out") == [7]


class TestDeadlockPredicate:
    def test_blocked_recv_is_deadlock(self):
        system = System("proc main() { var v; v = recv(empty); }")
        system.add_channel("empty")
        system.add_process("p", "main")
        run = system.start()
        run.start_processes()
        assert run.is_deadlock()

    def test_all_terminated_is_not_deadlock(self):
        run = pingpong_system().start()
        drive(run)
        assert run.all_terminated()
        assert not run.is_deadlock()

    def test_crashed_process_alone_is_not_deadlock(self):
        system = System("proc main() { var x = 1 / 0; }")
        system.add_process("p", "main")
        run = system.start()
        run.start_processes()
        assert run.processes[0].status is ProcessStatus.CRASHED
        assert not run.is_deadlock()

    def test_mixed_crash_and_block_is_deadlock(self):
        source = """
        proc crash() { var x = 1 / 0; }
        proc block() { var v; v = recv(empty); }
        """
        system = System(source)
        system.add_channel("empty")
        system.add_process("c", "crash")
        system.add_process("b", "block")
        run = system.start()
        run.start_processes()
        assert run.is_deadlock()


class TestAssertions:
    def test_violation_reported_with_location(self):
        system = System("proc main() { VS_assert(1 == 2); }")
        system.add_process("p", "main")
        run = system.start()
        run.start_processes()
        outcome = run.execute_visible(run.enabled_processes()[0])
        assert outcome is not None
        assert outcome.violated
        assert outcome.process == "p"
        assert outcome.proc_name == "main"

    def test_passing_assert(self):
        system = System("proc main() { VS_assert(true); }")
        system.add_process("p", "main")
        run = system.start()
        run.start_processes()
        outcome = run.execute_visible(run.enabled_processes()[0])
        assert outcome is not None and not outcome.violated

    def test_non_boolean_subject_is_violation(self):
        system = System("proc main() { VS_assert('oops'); }")
        system.add_process("p", "main")
        run = system.start()
        run.start_processes()
        outcome = run.execute_visible(run.enabled_processes()[0])
        assert outcome.violated


class TestStateFingerprint:
    def test_fingerprint_stable_across_identical_runs(self):
        system = pingpong_system()
        run1, run2 = system.start(), system.start()
        run1.start_processes()
        run2.start_processes()
        assert run1.state_fingerprint() == run2.state_fingerprint()

    def test_fingerprint_changes_with_progress(self):
        system = pingpong_system()
        run = system.start()
        run.start_processes()
        before = run.state_fingerprint()
        run.execute_visible(run.enabled_processes()[0])
        assert run.state_fingerprint() != before

    def test_fingerprint_is_hashable(self):
        run = pingpong_system().start()
        run.start_processes()
        hash(run.state_fingerprint())
