"""Unit tests for the compiled execution engine (repro.runtime.compile).

The observational parity between the compiled and walking engines is
held by tests/verisoft/test_engine_parity.py; this file covers the
compiler's own moving parts — slot frames, journaling, the
CompileUnsupported fallback, and the engine-selection plumbing.
"""

import pytest

from repro import System
from repro.lang import parse_program
from repro.lang.normalize import normalize_program
from repro.cfg import build_cfgs
from repro.runtime.compile import (
    CompiledEngine,
    CompileUnsupported,
    SlotFrame,
    compile_program,
    _SlotLayout,
)
from repro.runtime.engine import ENGINES, validate_engine
from repro.runtime.interp import Interpreter, TossRequest
from repro.runtime.journal import UndoJournal
from repro.runtime.objects import EnvSink
from repro.runtime.store import Frame


def cfgs_of(source):
    return build_cfgs(normalize_program(parse_program(source)))


POINTER_SOURCE = """
proc main() {
    var x;
    x = 1;
    var p;
    p = &x;
    *p = 42;
    send(out, x);
}
"""

STRAIGHT_LINE = """
proc main() {
    var a;
    a = 1;
    var b;
    b = a + 2;
    var c;
    c = b * 3;
    send(out, c);
}
"""


class TestSlotFrame:
    def layout(self):
        return _SlotLayout("p", ["x", "y"])

    def test_declare_and_fingerprint_match_dict_frame(self):
        slot_frame = SlotFrame(self.layout())
        slot_frame.declare_idx(0, 7)
        slot_frame.declare_idx(1, True)
        dict_frame = Frame("p")
        dict_frame.declare("x", 7)
        dict_frame.declare("y", True)
        assert slot_frame.state_fingerprint() == dict_frame.state_fingerprint()

    def test_undeclared_slots_absent_from_fingerprint(self):
        slot_frame = SlotFrame(self.layout())
        slot_frame.declare_idx(1, 3)
        dict_frame = Frame("p")
        dict_frame.declare("y", 3)
        assert slot_frame.state_fingerprint() == dict_frame.state_fingerprint()

    def test_fresh_declare_journals_one_slot_entry(self):
        journal = UndoJournal()
        frame = SlotFrame(self.layout(), journal=journal)
        frame.declare_idx(0, 5)
        assert journal.entries_recorded == 1

    def test_redeclare_journals_cell_and_keeps_identity(self):
        journal = UndoJournal()
        frame = SlotFrame(self.layout(), journal=journal)
        cell = frame.declare_idx(0, 5)
        again = frame.declare_idx(0, 9)
        assert again is cell  # in-place reset, like Frame.declare
        assert cell.value == 9
        assert journal.entries_recorded == 2

    def test_rewind_empties_fresh_slot(self):
        journal = UndoJournal()
        frame = SlotFrame(self.layout(), journal=journal)
        mark = journal.mark()
        frame.declare_idx(0, 5)
        journal.rewind(mark)
        assert frame.slots[0] is None
        assert frame.state_fingerprint() == SlotFrame(self.layout()).state_fingerprint()


class TestCompileUnsupported:
    def test_pointer_program_raises(self):
        with pytest.raises(CompileUnsupported):
            compile_program(cfgs_of(POINTER_SOURCE))

    def test_system_caches_unsupported_as_none(self):
        system = System(POINTER_SOURCE)
        assert system.compiled_program() is None
        assert system.compiled_program() is None  # cached, no re-raise

    def test_start_falls_back_to_walking_engine(self):
        system = System(POINTER_SOURCE)
        system.add_env_sink("out")
        system.add_process("p", "main", [])
        run = system.start(engine="compiled")
        assert run.engine == "walk"
        run.start_processes()
        while run.enabled_processes():
            run.execute_visible(run.enabled_processes()[0])
        assert run.env_outputs("out") == [42]

    def test_supported_program_compiles_and_caches(self):
        system = System(STRAIGHT_LINE)
        program = system.compiled_program()
        assert program is not None
        assert system.compiled_program() is program


class TestEngineSelection:
    def test_engines_constant(self):
        assert ENGINES == ("walk", "compiled")

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            validate_engine("jit")

    def test_run_records_requested_engine(self):
        system = System(STRAIGHT_LINE)
        system.add_env_sink("out")
        system.add_process("p", "main", [])
        assert system.start(engine="compiled").engine == "compiled"
        assert system.start(engine="walk").engine == "walk"


class TestCompiledEngineStepper:
    def engines(self, source, proc="main", args=()):
        cfgs = cfgs_of(source)
        program = compile_program(cfgs)
        objects = {"out": EnvSink("out")}
        compiled = CompiledEngine(program, proc, tuple(args), objects, process_name="p")
        walking = Interpreter(cfgs, proc, tuple(args), objects, process_name="p")
        return walking, compiled

    def test_straight_line_requests_and_fingerprints_match(self):
        walking, compiled = self.engines(STRAIGHT_LINE)
        req_w, req_c = walking.start(), compiled.start()
        assert req_w.op == req_c.op == "send"
        assert req_w.args == req_c.args == (9,)
        assert walking.state_fingerprint() == compiled.state_fingerprint()

    def test_toss_requests_carry_static_site_identity(self):
        source = """
        proc main() {
            var i;
            i = 0;
            while (i < 2) {
                var t;
                t = VS_toss(1);
                i = i + 1;
            }
            VS_assert(i == 2);
        }
        """
        _, compiled = self.engines(source)
        first = compiled.start()
        assert isinstance(first, TossRequest)
        second = compiled.resume(0)
        # Two executions of one toss site report the same static identity.
        assert (second.bound, second.node_id, second.proc_name) == (
            first.bound,
            first.node_id,
            first.proc_name,
        )

    def test_snapshot_restore_roundtrip_with_journal(self):
        source = """
        proc main() {
            var t;
            t = VS_toss(1);
            send(out, t);
            send(out, t + 1);
        }
        """
        cfgs = cfgs_of(source)
        journal = UndoJournal()
        compiled = CompiledEngine(
            compile_program(cfgs),
            "main",
            (),
            {"out": EnvSink("out")},
            process_name="p",
            journal=journal,
        )
        compiled.start()
        snap = compiled.snapshot()
        mark = journal.mark()
        before = compiled.state_fingerprint()
        compiled.resume(1)  # answer the toss, advance to the send
        assert compiled.state_fingerprint() != before
        # Engine snapshots cover control state; the journal undoes data.
        journal.rewind(mark)
        compiled.restore(snap)
        assert compiled.state_fingerprint() == before
        request = compiled.resume(0)  # the restored engine re-answers
        assert request.op == "send"
        assert request.args == (0,)
