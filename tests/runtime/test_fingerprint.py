"""Unit tests for the incremental fingerprint layer.

:mod:`repro.runtime.fingerprint` owns the canonical byte encoding of
state fingerprints and the :class:`RunFingerprinter` incremental
combiner (per-component ``fp_version`` dirty tracking).  The tests pin
its three contracts:

* the codec is an injective, prefix-free bijection over the fingerprint
  value domain (``decode_canonical`` inverts ``encode_canonical``);
* the incremental key is bit-identical to the full recomputation after
  every transition, toss, checkpoint and restore — including restores
  across epochs, where a stale memo would silently corrupt dedup;
* the pointer gate: programs that create pointers get no fingerprinter
  (aliasing defeats per-component tracking) but keep a correct
  ``state_key`` via full recomputation, and the frontier's
  ``canonical_fingerprint`` keeps byte keys wire-compatible with the
  structural ``repr`` format of pre-incremental checkpoints.
"""

import pytest

from repro import System
from repro.runtime.fingerprint import (
    RunFingerprinter,
    decode_canonical,
    encode_canonical,
)
from repro.service.frontier import canonical_fingerprint

# ---------------------------------------------------------------------------
# Codec: encode_canonical / decode_canonical
# ---------------------------------------------------------------------------

ROUNDTRIP_VALUES = [
    None,
    True,
    False,
    0,
    1,
    -1,
    2**70,
    -(2**70),
    "",
    "hello",
    "é☃",
    (),
    (None,),
    (1, "a", (True, (), ("nested", -5))),
    ((), ((),), (((),),)),
    tuple(range(50)),
]


class TestCodec:
    @pytest.mark.parametrize("value", ROUNDTRIP_VALUES, ids=repr)
    def test_roundtrip(self, value):
        assert decode_canonical(encode_canonical(value)) == value

    def test_bool_int_distinct(self):
        # bool is an int subclass; the states (True,) and (1,) differ.
        assert encode_canonical((True,)) != encode_canonical((1,))
        assert decode_canonical(encode_canonical(True)) is True
        assert decode_canonical(encode_canonical(1)) == 1

    def test_subclasses_funnel_to_base_encoding(self):
        class MyInt(int):
            pass

        class MyStr(str):
            pass

        assert encode_canonical(MyInt(7)) == encode_canonical(7)
        assert encode_canonical(MyStr("x")) == encode_canonical("x")

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonically encode"):
            encode_canonical([1, 2])
        with pytest.raises(TypeError, match="canonically encode"):
            encode_canonical((1, {"a": 1}))

    def test_trailing_bytes_rejected(self):
        data = encode_canonical((1, 2)) + b"X"
        with pytest.raises(ValueError, match="trailing"):
            decode_canonical(data)

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError, match="unknown tag"):
            decode_canonical(b"Z")

    def test_prefix_free(self):
        # The operational form of prefix-freedom: a tuple encodes as a
        # header plus the plain concatenation of its items' encodings,
        # and decoding splits that concatenation back unambiguously.
        combined = encode_canonical(tuple(ROUNDTRIP_VALUES))
        header_len = 5  # tag byte + 4-byte count
        assert combined == combined[:header_len] + b"".join(
            encode_canonical(v) for v in ROUNDTRIP_VALUES
        )
        assert decode_canonical(combined) == tuple(ROUNDTRIP_VALUES)


# ---------------------------------------------------------------------------
# Incremental keys on a live run
# ---------------------------------------------------------------------------

PINGPONG = """
proc ping(n) {
    var i = 0;
    while (i < n) {
        send(ab, i);
        var r;
        r = recv(ba);
        i = i + 1;
    }
}
proc pong(n) {
    var i = 0;
    while (i < n) {
        var v;
        v = recv(ab);
        send(ba, v + 100);
        i = i + 1;
    }
}
"""

TOSSER = """
proc main() {
    var t;
    t = VS_toss(2);
    send(out, t);
}
"""

POINTERED = """
proc main() {
    var x = 1;
    var p;
    p = &x;
    *p = 2;
    send(out, x);
}
"""


def pingpong_system(n=2):
    system = System(PINGPONG)
    system.add_channel("ab", capacity=1)
    system.add_channel("ba", capacity=1)
    system.add_process("ping", "ping", [n])
    system.add_process("pong", "pong", [n])
    return system


def oracle(run):
    """The full-recompute reference the incremental key must match."""
    return encode_canonical(run.state_fingerprint())


def assert_key(run):
    key = run.state_key()
    assert key == oracle(run)
    assert decode_canonical(key) == run.state_fingerprint()
    return key


class TestIncrementalKeys:
    @pytest.mark.parametrize("engine", ["walk", "compiled"])
    def test_key_matches_oracle_after_every_transition(self, engine):
        run = pingpong_system().start(engine=engine)
        run.start_processes()
        assert run.fingerprinter is not None
        seen = [assert_key(run)]
        while True:
            enabled = run.enabled_processes()
            if not enabled:
                break
            run.execute_visible(enabled[0])
            seen.append(assert_key(run))
        # The run moved through genuinely distinct states.
        assert len(set(seen)) > 2

    def test_key_stable_without_mutation(self):
        run = pingpong_system().start()
        run.start_processes()
        assert run.state_key() == run.state_key()

    def test_toss_bumps_the_key(self):
        system = System(TOSSER)
        system.add_env_sink("out")
        system.add_process("p", "main", [])
        run = system.start(journal=True)
        run.start_processes()
        before = assert_key(run)
        pending = run.toss_pending()
        assert pending is not None
        run.answer_toss(pending, 1)
        after = assert_key(run)
        assert after != before

    def test_checkpoint_restore_reinstalls_the_memo(self):
        run = pingpong_system().start(journal=True)
        run.start_processes()
        base_key = assert_key(run)
        checkpoint = run.checkpoint()
        # Mutate past the checkpoint, keying at every state so the memo
        # is hot (and would be stale after a naive rewind).
        for _ in range(3):
            enabled = run.enabled_processes()
            assert enabled
            run.execute_visible(enabled[0])
            assert_key(run)
        run.restore(checkpoint)
        assert assert_key(run) == base_key
        # And the restored epoch keeps tracking correctly.
        run.execute_visible(run.enabled_processes()[0])
        assert_key(run)

    def test_restore_branching_same_checkpoint_twice(self):
        # DFS shape: restore the same checkpoint, take different
        # branches; both branches must fingerprint correctly.
        run = pingpong_system().start(journal=True)
        run.start_processes()
        assert_key(run)
        checkpoint = run.checkpoint()
        first = run.enabled_processes()
        run.execute_visible(first[0])
        branch_a = assert_key(run)
        run.restore(checkpoint)
        second = run.enabled_processes()
        assert [p.name for p in second] == [p.name for p in first]
        run.execute_visible(second[-1])
        branch_b = assert_key(run)
        if len(first) > 1:
            assert branch_a != branch_b

    def test_snapshot_none_until_first_key(self):
        run = pingpong_system().start(journal=True)
        run.start_processes()
        assert run.fingerprinter.snapshot() is None
        checkpoint = run.checkpoint()
        assert checkpoint.fingerprints is None
        # A restore carrying no memo must still leave keys correct
        # (invalidate path): key after the checkpoint, then rewind.
        assert_key(run)
        run.execute_visible(run.enabled_processes()[0])
        assert_key(run)
        run.restore(checkpoint)
        assert_key(run)

    def test_snapshot_drops_stale_component_bytes(self):
        run = pingpong_system().start(journal=True)
        run.start_processes()
        fingerprinter = run.fingerprinter
        assert_key(run)
        # Dirty one process *without* re-keying: the snapshot must not
        # claim the stale bytes for the new version.
        run.execute_visible(run.enabled_processes()[0])
        snap = fingerprinter.snapshot()
        pver, pbytes, over, obytes = snap
        assert None in pbytes
        for index, encoded in enumerate(pbytes):
            if encoded is not None:
                assert pver[index] == run.processes[index].fp_version

    def test_mutation_bumps_fp_version(self):
        run = pingpong_system().start()
        run.start_processes()
        versions = [p.fp_version for p in run.processes]
        obj_versions = {name: o.fp_version for name, o in run.objects.items()}
        run.execute_visible(run.enabled_processes()[0])
        assert [p.fp_version for p in run.processes] != versions
        # A send landed in a channel: its version moved too.
        assert {n: o.fp_version for n, o in run.objects.items()} != obj_versions


# ---------------------------------------------------------------------------
# The pointer gate
# ---------------------------------------------------------------------------


class TestPointerGate:
    def test_pointer_program_gets_no_fingerprinter(self):
        system = System(POINTERED)
        system.add_env_sink("out")
        system.add_process("p", "main", [])
        assert system.uses_pointers()
        run = system.start()
        run.start_processes()
        assert run.fingerprinter is None
        # state_key falls back to full recomputation — still canonical.
        assert run.state_key() == oracle(run)

    def test_pointer_free_program_is_gated_in(self):
        system = pingpong_system()
        assert not system.uses_pointers()
        assert isinstance(
            system.start().fingerprinter, RunFingerprinter
        )


# ---------------------------------------------------------------------------
# Frontier wire-format compatibility
# ---------------------------------------------------------------------------


class TestFrontierCompatibility:
    def test_byte_keys_canonicalize_like_structural_fingerprints(self):
        # Pre-incremental frontier checkpoints stored repr(structure);
        # the explorer now collects canonical bytes.  Both must land on
        # the same canonical string, or resumed searches would re-count
        # every previously seen state.
        run = pingpong_system().start()
        run.start_processes()
        structure = run.state_fingerprint()
        assert canonical_fingerprint(run.state_key()) == repr(structure)
        assert canonical_fingerprint(structure) == repr(structure)
