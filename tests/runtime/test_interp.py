"""Tests for the CFG interpreter (single-process semantics)."""


from tests.helpers import outputs_of, run_single

from repro.runtime.process import ProcessStatus
from repro.runtime.values import TOP


def outputs(source, proc="main", args=(), **kwargs):
    return outputs_of(run_single(source, proc, args, **kwargs))


class TestArithmetic:
    def test_basic_ops(self):
        src = """
        proc main() {
            send(out, 2 + 3);
            send(out, 2 - 5);
            send(out, 4 * 3);
            send(out, 7 / 2);
            send(out, 7 % 3);
        }
        """
        assert outputs(src) == [5, -3, 12, 3, 1]

    def test_c_style_division_truncates_toward_zero(self):
        src = """
        proc main() {
            send(out, -7 / 2);
            send(out, 7 / -2);
            send(out, -7 % 2);
            send(out, 7 % -2);
        }
        """
        assert outputs(src) == [-3, -3, -1, 1]

    def test_division_by_zero_crashes(self):
        run = run_single("proc main() { var x = 1 / 0; }")
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_comparisons(self):
        src = """
        proc main() {
            if (1 < 2) { send(out, 'lt'); }
            if (2 <= 2) { send(out, 'le'); }
            if (3 > 2) { send(out, 'gt'); }
            if (2 >= 3) { send(out, 'no'); }
            if (1 == 1) { send(out, 'eq'); }
            if (1 != 2) { send(out, 'ne'); }
        }
        """
        assert outputs(src) == ["lt", "le", "gt", "eq", "ne"]

    def test_string_equality(self):
        src = """
        proc main() {
            var t = 'abc';
            if (t == 'abc') { send(out, 1); }
            if (t != 'xyz') { send(out, 2); }
        }
        """
        assert outputs(src) == [1, 2]

    def test_boolean_short_circuit(self):
        # The right operand would fault (division by zero) if evaluated.
        src = """
        proc main() {
            var zero = 0;
            if (false && (1 / zero) == 1) { send(out, 'bad'); }
            if (true || (1 / zero) == 1) { send(out, 'good'); }
        }
        """
        assert outputs(src) == ["good"]

    def test_unary_ops(self):
        src = """
        proc main() {
            send(out, -(3));
            if (!false) { send(out, 'notfalse'); }
            if (!0) { send(out, 'notzero'); }
        }
        """
        assert outputs(src) == [-3, "notfalse", "notzero"]


class TestControlFlow:
    def test_while_loop(self):
        src = """
        proc main() {
            var i = 0;
            var total = 0;
            while (i < 5) { total = total + i; i = i + 1; }
            send(out, total);
        }
        """
        assert outputs(src) == [10]

    def test_for_loop_with_continue_and_break(self):
        src = """
        proc main() {
            for (var i = 0; i < 10; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 6) { break; }
                send(out, i);
            }
        }
        """
        assert outputs(src) == [1, 3, 5]

    def test_switch_dispatch(self):
        src = """
        proc main(x) {
            switch (x) {
            case 1: send(out, 'one');
            case 2: send(out, 'two');
            default: send(out, 'many');
            }
        }
        """
        assert outputs(src, args=(1,)) == ["one"]
        assert outputs(src, args=(2,)) == ["two"]
        assert outputs(src, args=(5,)) == ["many"]

    def test_switch_on_strings(self):
        src = """
        proc main(x) {
            switch (x) {
            case 'setup': send(out, 1);
            default: send(out, 0);
            }
        }
        """
        assert outputs(src, args=("setup",)) == [1]
        assert outputs(src, args=("other",)) == [0]

    def test_exit_terminates(self):
        run = run_single("proc main() { send(out, 1); exit; send(out, 2); }")
        assert outputs_of(run) == [1]
        assert run.processes[0].status is ProcessStatus.TERMINATED


class TestProcedures:
    def test_call_and_return_value(self):
        src = """
        proc double(x) { return x * 2; }
        proc main() { send(out, double(21)); }
        """
        assert outputs(src) == [42]

    def test_recursion(self):
        src = """
        proc fact(n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        proc main() { send(out, fact(5)); }
        """
        assert outputs(src) == [120]

    def test_arguments_passed_by_value(self):
        src = """
        proc mutate(x) { x = 99; }
        proc main() { var a = 1; mutate(a); send(out, a); }
        """
        assert outputs(src) == [1]

    def test_pointer_argument_mutates_caller(self):
        src = """
        proc mutate(p) { *p = 99; }
        proc main() { var a = 1; mutate(&a); send(out, a); }
        """
        assert outputs(src) == [99]

    def test_missing_return_value_is_abstract(self):
        src = """
        proc f() { return; }
        proc main() { var x; x = f(); send(out, x); }
        """
        run = run_single(src)
        assert outputs_of(run) == [TOP]

    def test_call_depth_limit(self):
        src = """
        proc loop() { loop(); }
        proc main() { loop(); }
        """
        run = run_single(src)
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_locals_are_per_activation(self):
        src = """
        proc f(depth) {
            var local = depth;
            if (depth > 0) { f(depth - 1); }
            send(out, local);
        }
        proc main() { f(2); }
        """
        assert outputs(src) == [0, 1, 2]


class TestMemory:
    def test_arrays(self):
        src = """
        proc main() {
            var a[3];
            a[0] = 10;
            a[2] = 30;
            send(out, a[0] + a[1] + a[2]);
        }
        """
        assert outputs(src) == [40]

    def test_array_out_of_bounds_crashes(self):
        run = run_single("proc main() { var a[2]; a[5] = 1; }")
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_negative_index_crashes(self):
        run = run_single("proc main() { var a[2]; var i = -1; a[i] = 1; }")
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_records(self):
        src = """
        proc main() {
            var r;
            r = record();
            r.kind = 'setup';
            r.line = 7;
            send(out, r.kind);
            send(out, r.line);
        }
        """
        assert outputs(src) == ["setup", 7]

    def test_reading_missing_field_crashes(self):
        run = run_single(
            "proc main() { var r; r = record(); send(out, r.missing); }"
        )
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_field_on_non_record_crashes(self):
        run = run_single("proc main() { var x = 1; x.f = 2; }")
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_pointers_into_arrays(self):
        src = """
        proc main() {
            var a[2];
            var p = &a[1];
            *p = 42;
            send(out, a[1]);
        }
        """
        assert outputs(src) == [42]

    def test_pointer_chains(self):
        src = """
        proc main() {
            var x = 1;
            var p = &x;
            var pp = &p;
            **pp = 5;
            send(out, x);
        }
        """
        assert outputs(src) == [5]

    def test_deref_non_pointer_crashes(self):
        run = run_single("proc main() { var x = 1; var y = *x; }")
        assert run.processes[0].status is ProcessStatus.CRASHED


class TestAbstractValues:
    def test_top_propagates_through_arithmetic(self):
        src = "proc main() { var x = top; send(out, x + 1); }"
        assert outputs(src) == [TOP]

    def test_branching_on_top_crashes(self):
        run = run_single("proc main() { var x = top; if (x == 1) { skip; } }")
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_switch_on_top_crashes(self):
        run = run_single(
            "proc main() { var x = top; switch (x) { case 1: skip; default: skip; } }"
        )
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_sending_top_is_allowed(self):
        assert outputs("proc main() { send(out, top); }") == [TOP]

    def test_assert_on_top_passes_vacuously(self):
        run = run_single("proc main() { VS_assert(top); send(out, 'done'); }")
        assert outputs_of(run) == ["done"]


class TestToss:
    def test_toss_values_drive_execution(self):
        src = """
        proc main() {
            var t;
            t = VS_toss(2);
            send(out, t);
        }
        """
        assert outputs(src, toss_choices=[2]) == [2]
        assert outputs(src, toss_choices=[0]) == [0]

    def test_toss_negative_bound_crashes(self):
        run = run_single("proc main() { var t; t = VS_toss(-1); }")
        assert run.processes[0].status is ProcessStatus.CRASHED


class TestDivergence:
    def test_invisible_loop_diverges(self):
        from repro.runtime import SystemConfig
        from repro import System

        system = System(
            "proc main() { var i = 0; while (true) { i = i + 1; } }",
            config=SystemConfig(divergence_budget=500),
        )
        system.add_env_sink("out")
        system.add_process("P", "main")
        run = system.start()
        run.start_processes()
        assert run.processes[0].status is ProcessStatus.DIVERGED

    def test_visible_ops_reset_budget(self):
        from repro.runtime import SystemConfig
        from repro import System

        system = System(
            """
            proc main() {
                var i = 0;
                while (i < 100) {
                    var j = 0;
                    while (j < 50) { j = j + 1; }
                    send(out, i);
                    i = i + 1;
                }
            }
            """,
            config=SystemConfig(divergence_budget=500),
        )
        system.add_env_sink("out")
        system.add_process("P", "main")
        run = system.start()
        run.start_processes()
        while run.enabled_processes():
            run.execute_visible(run.enabled_processes()[0])
        assert run.processes[0].status is ProcessStatus.TERMINATED
