"""Tests for communication objects — especially history-only enabledness."""

import pytest

from repro.runtime.errors import ObjectError
from repro.runtime.objects import EnvSink, FifoChannel, Semaphore, SharedVar


class TestFifoChannel:
    def test_send_recv_fifo_order(self):
        ch = FifoChannel("c", capacity=3)
        ch.perform("send", (1,))
        ch.perform("send", (2,))
        assert ch.perform("recv", ()) == 1
        assert ch.perform("recv", ()) == 2

    def test_enabledness_is_history_only(self):
        ch = FifoChannel("c", capacity=1)
        assert ch.enabled("send")
        assert not ch.enabled("recv")
        ch.perform("send", (42,))
        assert not ch.enabled("send")
        assert ch.enabled("recv")
        ch.perform("recv", ())
        assert ch.enabled("send")

    def test_enabledness_independent_of_values(self):
        # Two channels with identical op histories but different values
        # have identical enabledness — the Section 2 assumption.
        a, b = FifoChannel("a", 2), FifoChannel("b", 2)
        a.perform("send", (1,))
        b.perform("send", (999,))
        for op in ("send", "recv", "poll"):
            assert a.enabled(op) == b.enabled(op)

    def test_poll_counts_queue(self):
        ch = FifoChannel("c", capacity=2)
        assert ch.perform("poll", ()) == 0
        ch.perform("send", (1,))
        assert ch.perform("poll", ()) == 1

    def test_capacity_validation(self):
        with pytest.raises(ObjectError):
            FifoChannel("c", capacity=0)

    def test_unknown_op_rejected(self):
        with pytest.raises(ObjectError):
            FifoChannel("c").enabled("sem_p")

    def test_messages_copied_on_send(self):
        from repro.runtime.values import RecordValue

        ch = FifoChannel("c", capacity=1)
        record = RecordValue()
        record.cell("f", create=True).value = 1
        ch.perform("send", (record,))
        record.fields["f"].value = 99  # sender mutates after send
        received = ch.perform("recv", ())
        assert received.fields["f"].value == 1

    def test_fingerprint_reflects_queue(self):
        ch = FifoChannel("c", capacity=2)
        before = ch.state_fingerprint()
        ch.perform("send", (1,))
        assert ch.state_fingerprint() != before


class TestEnvSink:
    def test_always_enabled_for_send(self):
        sink = EnvSink("out")
        for _ in range(100):
            sink.perform("send", ("x",))
        assert sink.enabled("send")

    def test_records_outputs_in_order(self):
        sink = EnvSink("out")
        sink.perform("send", (1,))
        sink.perform("send", (2,))
        assert sink.outputs == [1, 2]

    def test_recv_not_supported(self):
        with pytest.raises(ObjectError):
            EnvSink("out").enabled("recv")

    def test_fingerprint_hidden_by_default(self):
        sink = EnvSink("out")
        before = sink.state_fingerprint()
        sink.perform("send", (1,))
        assert sink.state_fingerprint() == before

    def test_fingerprint_visible_when_requested(self):
        sink = EnvSink("out", visible_in_state=True)
        before = sink.state_fingerprint()
        sink.perform("send", (1,))
        assert sink.state_fingerprint() != before


class TestSemaphore:
    def test_p_blocks_at_zero(self):
        sem = Semaphore("s", initial=1)
        assert sem.enabled("sem_p")
        sem.perform("sem_p", ())
        assert not sem.enabled("sem_p")
        sem.perform("sem_v", ())
        assert sem.enabled("sem_p")

    def test_counting(self):
        sem = Semaphore("s", initial=2)
        sem.perform("sem_p", ())
        sem.perform("sem_p", ())
        assert not sem.enabled("sem_p")

    def test_v_always_enabled(self):
        sem = Semaphore("s", initial=0)
        assert sem.enabled("sem_v")

    def test_negative_initial_rejected(self):
        with pytest.raises(ObjectError):
            Semaphore("s", initial=-1)


class TestSharedVar:
    def test_read_write(self):
        sv = SharedVar("v", initial=7)
        assert sv.perform("read", ()) == 7
        sv.perform("write", (9,))
        assert sv.perform("read", ()) == 9

    def test_always_enabled(self):
        sv = SharedVar("v")
        assert sv.enabled("read") and sv.enabled("write")

    def test_values_copied(self):
        from repro.runtime.values import ArrayValue

        sv = SharedVar("v")
        array = ArrayValue(size=1)
        sv.perform("write", (array,))
        array.cells[0].value = 5
        assert sv.perform("read", ()).cells[0].value == 0

    def test_fingerprint_tracks_value(self):
        sv = SharedVar("v", initial=0)
        before = sv.state_fingerprint()
        sv.perform("write", (1,))
        assert sv.state_fingerprint() != before
