"""Unit tests for the Process wrapper."""

import pytest

from repro import System
from repro.runtime.process import ProcessStatus


def fresh_process(source="proc main() { send(out, 1); }", args=()):
    system = System(source)
    system.add_env_sink("out")
    system.add_process("p", "main", list(args))
    run = system.start()
    return run, run.processes[0]


class TestLifecycle:
    def test_status_none_before_start(self):
        _, process = fresh_process()
        assert process.status is None
        assert process.pending is None

    def test_at_visible_after_start(self):
        run, process = fresh_process()
        run.start_processes()
        assert process.status is ProcessStatus.AT_VISIBLE
        assert process.visible_request is not None
        assert process.toss_request is None

    def test_needs_toss(self):
        run, process = fresh_process("proc main() { var t; t = VS_toss(1); }")
        run.start_processes()
        assert process.status is ProcessStatus.NEEDS_TOSS
        assert process.toss_request is not None
        assert process.visible_request is None

    def test_terminated(self):
        run, process = fresh_process("proc main() { return; }")
        run.start_processes()
        assert process.status is ProcessStatus.TERMINATED
        assert process.is_blocked_forever()

    def test_resume_in_wrong_state_raises(self):
        run, process = fresh_process("proc main() { return; }")
        run.start_processes()
        with pytest.raises(RuntimeError):
            process.resume(None)

    def test_crash_captures_fault(self):
        run, process = fresh_process("proc main() { var x = 1 / 0; }")
        run.start_processes()
        assert process.status is ProcessStatus.CRASHED
        assert "division by zero" in str(process.crash)
        assert process.is_blocked_forever()


class TestEnabledness:
    def test_enabled_tracks_object_state(self):
        source = "proc main() { var v; v = recv(box); }"
        system = System(source)
        system.add_channel("box", capacity=1)
        system.add_process("p", "main")
        run = system.start()
        run.start_processes()
        process = run.processes[0]
        assert not process.enabled()
        run.objects["box"].perform("send", (5,))
        assert process.enabled()

    def test_assert_always_enabled(self):
        run, process = fresh_process("proc main() { VS_assert(true); }")
        run.start_processes()
        assert process.enabled()


class TestFingerprints:
    def test_fingerprint_stable_for_same_state(self):
        run1, p1 = fresh_process()
        run2, p2 = fresh_process()
        run1.start_processes()
        run2.start_processes()
        assert p1.state_fingerprint() == p2.state_fingerprint()

    def test_terminated_fingerprint_is_minimal(self):
        run, process = fresh_process("proc main() { return; }")
        run.start_processes()
        assert process.state_fingerprint() == ("p", "terminated")

    def test_repr_contains_status(self):
        run, process = fresh_process()
        run.start_processes()
        assert "at-visible" in repr(process)
