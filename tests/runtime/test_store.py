"""Tests for frames (stores)."""

import pytest

from repro.runtime.errors import RuntimeFault
from repro.runtime.store import Frame
from repro.runtime.values import ArrayValue, Pointer


class TestFrame:
    def test_declare_and_read(self):
        frame = Frame("p")
        frame.declare("x", 5)
        assert frame.cell("x").value == 5

    def test_undeclared_use_faults(self):
        frame = Frame("p")
        with pytest.raises(RuntimeFault):
            frame.cell("ghost")

    def test_redeclare_resets_in_place(self):
        # Re-executing a declaration (loop body) must keep the same cell
        # so outstanding pointers stay valid.
        frame = Frame("p")
        cell = frame.declare("x", 1)
        pointer = Pointer(cell)
        again = frame.declare("x", 0)
        assert again is cell
        assert pointer.cell.value == 0

    def test_declare_array(self):
        frame = Frame("p")
        cell = frame.declare_array("a", 4)
        assert isinstance(cell.value, ArrayValue)
        assert len(cell.value) == 4

    def test_fingerprint_is_deterministic(self):
        a, b = Frame("p"), Frame("p")
        for frame in (a, b):
            frame.declare("y", 2)
            frame.declare("x", 1)
        assert a.state_fingerprint() == b.state_fingerprint()

    def test_fingerprint_differs_by_value(self):
        a, b = Frame("p"), Frame("p")
        a.declare("x", 1)
        b.declare("x", 2)
        assert a.state_fingerprint() != b.state_fingerprint()

    def test_fingerprint_includes_proc_name(self):
        a, b = Frame("p"), Frame("q")
        assert a.state_fingerprint() != b.state_fingerprint()
