"""Tests for the undo journal and Run checkpoint/restore.

The contract under test is the one restore-based backtracking depends
on: restoring a checkpoint must reproduce the checkpointed state
*bit-identically* — the same ``state_fingerprint()`` as re-executing the
same prefix in a fresh run — in O(changes since), and must be repeatable
(restore twice from the same checkpoint) and crash-safe (restore across
a state that crashed or diverged).
"""

import pytest

from repro import System
from repro.runtime.journal import RunCheckpoint, UndoJournal
from repro.runtime.process import ProcessStatus

PINGPONG = """
proc ping(n) {
    var i = 0;
    while (i < n) {
        send(ab, i);
        var r;
        r = recv(ba);
        i = i + 1;
    }
}
proc pong(n) {
    var i = 0;
    while (i < n) {
        var v;
        v = recv(ab);
        send(ba, v + 100);
        i = i + 1;
    }
}
"""

RICH_STATE = """
proc main(n) {
    var r = record();
    r.count = 0;
    var arr[3];
    var i = 0;
    while (i < n) {
        arr[i] = i * 10;
        r.count = r.count + 1;
        sem_p(gate);
        write(sv, i);
        send(out, r.count);
        sem_v(gate);
        i = i + 1;
    }
}
"""


def pingpong_system(n=2):
    system = System(PINGPONG)
    system.add_channel("ab", capacity=1)
    system.add_channel("ba", capacity=1)
    system.add_process("ping", "ping", [n])
    system.add_process("pong", "pong", [n])
    return system


def rich_system(n=3):
    system = System(RICH_STATE)
    system.add_semaphore("gate", initial=1)
    system.add_shared("sv", initial=0)
    system.add_env_sink("out", visible_in_state=True)
    system.add_process("main", "main", [n])
    return system


def step_visible(run, count):
    """Execute ``count`` visible operations in fixed (first-enabled) order,
    answering tosses with 0.  Returns the number actually executed."""
    executed = 0
    while executed < count:
        pending = run.toss_pending()
        if pending is not None:
            run.answer_toss(pending, 0)
            continue
        enabled = run.enabled_processes()
        if not enabled:
            break
        run.execute_visible(enabled[0])
        executed += 1
    return executed


class TestUndoJournalUnits:
    def test_cell_rewind(self):
        from repro.runtime.values import Cell

        journal = UndoJournal()
        cell = Cell(1)
        mark = journal.mark()
        journal.record_cell(cell)
        cell.value = 2
        journal.rewind(mark)
        assert cell.value == 1

    def test_attr_rewind(self):
        class Obj:
            count = 5

        journal = UndoJournal()
        obj = Obj()
        mark = journal.mark()
        journal.record_attr(obj, "count")
        obj.count = 0
        journal.rewind(mark)
        assert obj.count == 5

    def test_dict_new_key_rewind(self):
        journal = UndoJournal()
        mapping = {"a": 1}
        mark = journal.mark()
        journal.record_new_key(mapping, "b")
        mapping["b"] = 2
        journal.rewind(mark)
        assert mapping == {"a": 1}

    def test_append_and_popleft_rewind(self):
        from collections import deque

        journal = UndoJournal()
        queue = deque([1, 2])
        mark = journal.mark()
        journal.record_append(queue)
        queue.append(3)
        value = queue.popleft()
        journal.record_popleft(queue, value)
        journal.rewind(mark)
        assert list(queue) == [1, 2]

    def test_rewind_is_lifo(self):
        from repro.runtime.values import Cell

        journal = UndoJournal()
        cell = Cell(0)
        mark = journal.mark()
        for value in (1, 2, 3):
            journal.record_cell(cell)
            cell.value = value
        journal.rewind(mark)
        assert cell.value == 0

    def test_partial_rewind_to_intermediate_mark(self):
        from repro.runtime.values import Cell

        journal = UndoJournal()
        cell = Cell(0)
        journal.record_cell(cell)
        cell.value = 1
        mid = journal.mark()
        journal.record_cell(cell)
        cell.value = 2
        journal.rewind(mid)
        assert cell.value == 1

    def test_forward_rewind_rejected(self):
        journal = UndoJournal()
        with pytest.raises(ValueError):
            journal.rewind(1)

    def test_telemetry_counters(self):
        from repro.runtime.values import Cell

        journal = UndoJournal()
        cell = Cell(0)
        mark = journal.mark()
        journal.record_cell(cell)
        journal.record_cell(cell)
        journal.rewind(mark)
        journal.rewind(mark)  # empty rewind still counts as a restore
        assert journal.entries_recorded == 2
        assert journal.entries_undone == 2
        assert journal.restores == 2
        assert journal.peak_entries == 2
        assert journal.peak_memory_bytes() > 0


class TestRunCheckpointRestore:
    def test_unjournaled_run_refuses_checkpoint(self):
        run = pingpong_system().start()
        with pytest.raises(RuntimeError):
            run.checkpoint()

    def test_restore_matches_fresh_reexecution(self):
        """The core bit-identical contract, probed at every prefix depth."""
        system = pingpong_system(n=2)
        # Reference fingerprints from plain (journal-free) execution.
        reference = []
        ref_run = system.start()
        ref_run.start_processes()
        reference.append(ref_run.state_fingerprint())
        while step_visible(ref_run, 1):
            reference.append(ref_run.state_fingerprint())

        run = system.start(journal=True)
        run.start_processes()
        checkpoints = [run.checkpoint()]
        while step_visible(run, 1):
            checkpoints.append(run.checkpoint())
        assert len(checkpoints) == len(reference)

        # Restore to successively shallower depths (an undo journal only
        # rewinds to *ancestors* — DFS backtracking order), repeating one
        # depth to prove restore-from-the-same-checkpoint is idempotent.
        last = len(reference) - 1
        for depth in [last, last, len(reference) // 2, 1, 0, 0]:
            run.restore(checkpoints[depth])
            assert run.state_fingerprint() == reference[depth]

    def test_restore_then_reexecute_matches(self):
        """After a restore the run must be *live*: executing forward again
        reproduces exactly the states the first pass saw."""
        system = rich_system(n=3)
        run = system.start(journal=True)
        run.start_processes()
        base = run.checkpoint()
        first_pass = []
        while step_visible(run, 1):
            first_pass.append(run.state_fingerprint())
        run.restore(base)
        second_pass = []
        while step_visible(run, 1):
            second_pass.append(run.state_fingerprint())
        assert second_pass == first_pass

    def test_rich_state_round_trip(self):
        """Records, arrays, semaphores, shared vars and sink outputs all
        rewind — including sink output traces and record field creation."""
        system = rich_system(n=3)
        run = system.start(journal=True)
        run.start_processes()
        cp = run.checkpoint()
        fp_before = run.state_fingerprint()
        step_visible(run, 6)
        assert run.state_fingerprint() != fp_before
        run.restore(cp)
        assert run.state_fingerprint() == fp_before
        assert run.objects["out"].outputs == []
        assert run.objects["gate"].count == 1
        assert run.objects["sv"].value == 0

    def test_restore_cost_is_o_changes_not_o_depth(self):
        """Restoring one step back near the end of a long run must undo
        only the entries of that step, not replay/undo the whole path."""
        system = pingpong_system(n=20)
        run = system.start(journal=True)
        run.start_processes()
        step_visible(run, 70)
        late = run.checkpoint()
        undone_before = run.journal.entries_undone
        step_visible(run, 1)
        run.restore(late)
        undone = run.journal.entries_undone - undone_before
        assert 0 < undone < 20  # one recv+locals, nowhere near the path total

    def test_restore_across_crash(self):
        system = System(
            """
            proc main() {
                var p = 1;
                send(out, p);
                VS_assert(1 / 0);
            }
            """
        )
        system.add_env_sink("out")
        system.add_process("main", "main", [])
        run = system.start(journal=True)
        run.start_processes()
        cp = run.checkpoint()
        fp = run.state_fingerprint()
        step_visible(run, 2)  # second op crashes (division by zero)
        assert run.processes[0].status is ProcessStatus.CRASHED
        run.restore(cp)
        assert run.processes[0].status is ProcessStatus.AT_VISIBLE
        assert run.processes[0].crash is None
        assert run.state_fingerprint() == fp
        # And the run is live again after the restore.
        assert step_visible(run, 1) == 1

    def test_checkpoint_reports_memory(self):
        run = pingpong_system().start(journal=True)
        run.start_processes()
        cp = run.checkpoint()
        assert isinstance(cp, RunCheckpoint)
        assert cp.approx_bytes > 0
