"""Tests for runtime values, cells, and fingerprinting."""


from repro.runtime.values import (
    TOP,
    AbstractValue,
    ArrayValue,
    Cell,
    ObjectRef,
    Pointer,
    RecordValue,
    copy_value,
    fingerprint,
    values_equal,
)


class TestAbstractValue:
    def test_singleton(self):
        assert AbstractValue() is TOP

    def test_repr(self):
        assert repr(TOP) == "TOP"


class TestCellsAndPointers:
    def test_cell_mutation_visible_through_pointer(self):
        cell = Cell(1)
        pointer = Pointer(cell)
        cell.value = 2
        assert pointer.cell.value == 2

    def test_pointer_equality_is_cell_identity(self):
        cell = Cell(1)
        assert values_equal(Pointer(cell), Pointer(cell))
        assert not values_equal(Pointer(cell), Pointer(Cell(1)))


class TestArraysAndRecords:
    def test_array_initialized_to_zero(self):
        array = ArrayValue(size=3)
        assert [c.value for c in array.cells] == [0, 0, 0]

    def test_record_field_autocreate(self):
        record = RecordValue()
        assert record.cell("f") is None
        cell = record.cell("f", create=True)
        assert cell is not None and cell.value == 0
        assert record.cell("f") is cell


class TestCopyValue:
    def test_scalars_shared(self):
        assert copy_value(5) == 5
        assert copy_value("tag") == "tag"
        assert copy_value(TOP) is TOP
        ref = ObjectRef("channel", "c")
        assert copy_value(ref) is ref

    def test_array_copied_deeply(self):
        array = ArrayValue(size=2)
        clone = copy_value(array)
        array.cells[0].value = 9
        assert clone.cells[0].value == 0

    def test_record_copied_deeply(self):
        record = RecordValue()
        record.cell("f", create=True).value = 1
        clone = copy_value(record)
        record.fields["f"].value = 2
        assert clone.fields["f"].value == 1

    def test_pointer_copied_by_reference(self):
        cell = Cell(1)
        pointer = Pointer(cell)
        clone = copy_value(pointer)
        cell.value = 7
        assert clone.cell.value == 7


class TestValuesEqual:
    def test_ints_and_strings(self):
        assert values_equal(3, 3)
        assert not values_equal(3, 4)
        assert values_equal("a", "a")
        assert not values_equal("a", 3)

    def test_top_only_equals_top(self):
        assert values_equal(TOP, TOP)
        assert not values_equal(TOP, 0)
        assert not values_equal(0, TOP)

    def test_arrays_structural(self):
        a = ArrayValue(size=2)
        b = ArrayValue(size=2)
        assert values_equal(a, b)
        a.cells[1].value = 5
        assert not values_equal(a, b)
        assert not values_equal(a, ArrayValue(size=3))

    def test_records_structural(self):
        a, b = RecordValue(), RecordValue()
        a.cell("f", create=True).value = 1
        b.cell("f", create=True).value = 1
        assert values_equal(a, b)
        b.cell("g", create=True)
        assert not values_equal(a, b)


class TestFingerprint:
    def test_scalars(self):
        assert fingerprint(5) == 5
        assert fingerprint(TOP) == ("top",)

    def test_array_fingerprint_changes_with_content(self):
        array = ArrayValue(size=2)
        before = fingerprint(array)
        array.cells[0].value = 1
        assert fingerprint(array) != before

    def test_record_fingerprint_field_order_independent(self):
        a, b = RecordValue(), RecordValue()
        a.cell("x", create=True).value = 1
        a.cell("y", create=True).value = 2
        b.cell("y", create=True).value = 2
        b.cell("x", create=True).value = 1
        assert fingerprint(a) == fingerprint(b)

    def test_pointer_cycle_terminates(self):
        cell = Cell(0)
        cell.value = Pointer(cell)
        assert fingerprint(Pointer(cell)) is not None

    def test_fingerprints_are_hashable(self):
        record = RecordValue()
        record.cell("f", create=True).value = ArrayValue(size=1)
        hash(fingerprint(record))
