"""End-to-end messaging tests: structured data through objects, poll,
pointer mailing, kind checking."""


from repro import System
from repro.runtime.process import ProcessStatus


def drive(run, max_steps=2000, toss=0):
    run.start_processes()
    for _ in range(max_steps):
        pending = run.toss_pending()
        if pending is not None:
            run.answer_toss(pending, toss)
            continue
        enabled = run.enabled_processes()
        if not enabled:
            return
        run.execute_visible(enabled[0])
    raise AssertionError("did not quiesce")


class TestStructuredMessages:
    def test_record_through_channel(self):
        source = """
        proc sender() {
            var msg;
            msg = record();
            msg.kind = 'setup';
            msg.line = 7;
            send(box, msg);
        }
        proc receiver() {
            var m;
            m = recv(box);
            send(out, m.kind);
            send(out, m.line);
        }
        """
        system = System(source)
        system.add_channel("box", capacity=1)
        system.add_env_sink("out")
        system.add_process("s", "sender", [])
        system.add_process("r", "receiver", [])
        run = system.start()
        drive(run)
        assert run.env_outputs("out") == ["setup", 7]

    def test_record_mutation_after_send_invisible(self):
        source = """
        proc sender() {
            var msg;
            msg = record();
            msg.v = 1;
            send(box, msg);
            msg.v = 99;
            send(done, 1);
        }
        proc receiver() {
            var go;
            go = recv(done);
            var m;
            m = recv(box);
            send(out, m.v);
        }
        """
        system = System(source)
        system.add_channel("box", capacity=1)
        system.add_channel("done", capacity=1)
        system.add_env_sink("out")
        system.add_process("s", "sender", [])
        system.add_process("r", "receiver", [])
        run = system.start()
        drive(run)
        assert run.env_outputs("out") == [1]  # copy-on-send

    def test_pointer_through_channel_shares_cell(self):
        source = """
        proc owner() {
            var cell = 0;
            send(box, &cell);
            var go;
            go = recv(done);
            send(out, cell);
        }
        proc writer() {
            var p;
            p = recv(box);
            *p = 42;
            send(done, 1);
        }
        """
        system = System(source)
        system.add_channel("box", capacity=1)
        system.add_channel("done", capacity=1)
        system.add_env_sink("out")
        system.add_process("o", "owner", [])
        system.add_process("w", "writer", [])
        run = system.start()
        drive(run)
        assert run.env_outputs("out") == [42]

    def test_poll_observes_queue_length(self):
        source = """
        proc main() {
            send(out, poll(box));
            send(box, 1);
            send(box, 2);
            send(out, poll(box));
        }
        """
        system = System(source)
        system.add_channel("box", capacity=4)
        system.add_env_sink("out")
        system.add_process("m", "main", [])
        run = system.start()
        drive(run)
        assert run.env_outputs("out") == [0, 2]


class TestKindChecking:
    def _crashing_run(self, body, objects):
        system = System(f"proc main() {{ {body} }}")
        for kind, name, arg in objects:
            if kind == "channel":
                system.add_channel(name, capacity=arg)
            elif kind == "semaphore":
                system.add_semaphore(name, initial=arg)
            elif kind == "shared":
                system.add_shared(name, initial=arg)
        system.add_process("m", "main", [])
        run = system.start()
        run.start_processes()
        while run.enabled_processes():
            run.execute_visible(run.enabled_processes()[0])
        return run

    def test_send_on_semaphore_crashes(self):
        run = self._crashing_run("send(s, 1);", [("semaphore", "s", 1)])
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_sem_p_on_channel_crashes(self):
        run = self._crashing_run("sem_p(c);", [("channel", "c", 1)])
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_read_on_channel_crashes(self):
        run = self._crashing_run("var v; v = read(c);", [("channel", "c", 1)])
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_unknown_object_crashes(self):
        run = self._crashing_run("send(ghost, 1);", [])
        assert run.processes[0].status is ProcessStatus.CRASHED

    def test_lookup_kind_mismatch_crashes(self):
        run = self._crashing_run(
            "var c; c = channel('s');", [("semaphore", "s", 1)]
        )
        assert run.processes[0].status is ProcessStatus.CRASHED


class TestArraysThroughSystem:
    def test_array_via_shared_var(self):
        source = """
        proc writer() {
            var a[3];
            a[1] = 5;
            write(table, a);
        }
        proc reader() {
            var t;
            t = recv(sync);
            var a;
            a = read(table);
            send(out, a[1]);
        }
        proc syncer() { send(sync, 1); }
        """
        system = System(source)
        system.add_shared("table", initial=0)
        system.add_channel("sync", capacity=1)
        system.add_env_sink("out")
        system.add_process("w", "writer", [])
        system.add_process("s", "syncer", [])
        system.add_process("r", "reader", [])
        run = system.start()
        run.start_processes()
        # force writer first so the table is populated
        order = {"w": 0, "s": 1, "r": 2}
        for _ in range(50):
            enabled = sorted(run.enabled_processes(), key=lambda p: order[p.name])
            if not enabled:
                break
            run.execute_visible(enabled[0])
        assert run.env_outputs("out") == [5]
