"""Experiment PERF-CACHE — DFS throughput with and without state caching.

The stateless explorer's defining trade (store nothing, re-execute
everything) meets its SPIN-style counterweight here: a visited-state
store prunes revisited subtrees at the cost of remembering states.
This experiment runs the exhaustive DFS over Figure 2, Figure 3 and the
Section 6 call-processing application, uncached and under each store,
and records states, transitions, wall time, throughput and the store's
memory footprint.

Besides the human-readable table, the run writes ``BENCH_search.json``
at the repository root so the numbers are machine-consumable across
sessions; the 8x memory-per-state claim of the compacting stores is
asserted on the 5ESS rows and recorded in the JSON.
"""

from __future__ import annotations

import time

import pytest

from repro import SearchOptions, run_search
from repro.fiveess import build_app
from benchmarks.bench_lib import baseline_delta_lines, merge_bench_json
from tests.statespace.conftest import FIG2_SRC, FIG3_SRC, figure_system

pytestmark = pytest.mark.slow

#: (label, system factory, SearchOptions bounds).  The 5ESS slice is
#: bounded to keep the four runs per system inside a couple of minutes.
CASES = [
    ("fig2", lambda: figure_system(FIG2_SRC, "p"), dict(max_depth=60)),
    ("fig3", lambda: figure_system(FIG3_SRC, "q"), dict(max_depth=60)),
    (
        "5ess",
        lambda: _fiveess_system(),
        dict(max_depth=22, max_events=100_000),
    ),
]

CACHES = ("off", "exact", "hashcompact", "bitstate")


def _fiveess_system():
    app = build_app(n_lines=2, calls_per_line=1)
    return app.make_system(app.close(), with_maintenance=False)


def _run_one(build, bounds, cache):
    system = build()
    options = SearchOptions(state_cache=cache, cache_bits=20, **bounds)
    started = time.perf_counter()
    report = run_search(system, options)
    elapsed = time.perf_counter() - started
    stats = report.stats
    return {
        "state_cache": cache,
        "states": stats.states_visited,
        "transitions": stats.transitions_executed,
        "paths": stats.paths_explored,
        "wall_time_s": round(elapsed, 4),
        "states_per_second": round(stats.states_visited / elapsed) if elapsed else 0,
        "violation_groups": len(report.triage()),
        "cache_hits": stats.cache_hits,
        "cache_stored": stats.cache_stored,
        "cache_memory_bytes": stats.cache_memory_bytes,
        "cache_bytes_per_state": stats.cache_bytes_per_state,
    }


def test_bench_search(record_table, baseline_results):
    results = {}
    lines = [
        "DFS with and without state caching (cache_bits=20 for bitstate)",
        "",
        f"  {'system':<6} {'cache':<12} {'states':>8} {'trans':>8} "
        f"{'time':>8} {'states/s':>10} {'B/state':>9} {'groups':>7}",
    ]
    for label, build, bounds in CASES:
        rows = []
        for cache in CACHES:
            row = _run_one(build, bounds, cache)
            rows.append(row)
            per_state = row["cache_bytes_per_state"]
            lines.append(
                f"  {label:<6} {cache:<12} {row['states']:>8} "
                f"{row['transitions']:>8} {row['wall_time_s']:>7.2f}s "
                f"{row['states_per_second']:>10,} "
                f"{per_state if per_state is not None else 0:>9.1f} "
                f"{row['violation_groups']:>7}"
            )
        results[label] = rows

        # The parity contract, for the *sound* stores: caching never
        # changes what is found.  Bitstate is exempt by design — it
        # ignores the remaining-depth budget and admits Bloom
        # collisions, so under a depth bound it may lose coverage (it
        # does on the 5ESS run); the table records that honestly.
        sound = {
            row["violation_groups"]
            for row in rows
            if row["state_cache"] in ("off", "exact", "hashcompact")
        }
        assert len(sound) == 1, f"{label}: sound caches disagree on groups {sound}"

    # The memory claim: on the 5ESS case study the compacting stores
    # cost at least 8x less per stored state than full snapshots.
    by_cache = {row["state_cache"]: row for row in results["5ess"]}
    exact_per_state = by_cache["exact"]["cache_bytes_per_state"]
    for compact in ("hashcompact", "bitstate"):
        compact_per_state = by_cache[compact]["cache_bytes_per_state"]
        ratio = exact_per_state / compact_per_state
        assert ratio >= 8, f"{compact}: only {ratio:.1f}x smaller than exact"
        by_cache[compact]["memory_ratio_vs_exact"] = round(ratio, 1)
    lines.append("")
    lines.append(
        "memory per state vs exact: "
        + ", ".join(
            f"{kind} {by_cache[kind]['memory_ratio_vs_exact']}x smaller"
            for kind in ("hashcompact", "bitstate")
        )
    )

    for label, rows in results.items():
        merge_bench_json("search", label, rows)
        lines.extend(
            baseline_delta_lines(baseline_results.get("search"), label, rows)
        )
    lines.append("wrote BENCH_search.json")
    record_table("bench_search", lines)
