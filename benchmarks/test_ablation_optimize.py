"""Experiment ABL-OPT — effect of the optional clean-up passes.

Section 5 sketches two improvements beyond the core algorithm:
eliminating redundant VS_toss sequences ("sequences of VS_toss that
result in the same sequences of marked nodes are redundant") and, via
its precision discussion, the value of removing erasure residue.  This
ablation measures ``ClosedProgram.optimize()`` (dead-store elimination +
bisimulation-based toss minimization) on the case-study core:

* closed program size before/after;
* exhaustive exploration cost (paths, transitions, distinct states) of a
  bounded configuration before/after;
* findings (the seeded billing violation) must be identical.
"""


from repro import SearchOptions, run_search
from repro.fiveess import build_app


def _nodes(cfgs):
    return sum(cfg.node_count() for cfg in cfgs.values())


def _explore(app, closed):
    system = app.make_system(closed, with_mobility=False, with_maintenance=False)
    return run_search(
        system,
        SearchOptions(
            max_depth=45,
            por=True,
            max_paths=4000,
            count_states=True,
            time_budget=60,
        ),
    )


def test_ablation_optimize(benchmark, record_table):
    app = build_app(n_lines=2, calls_per_line=1)
    closed = app.close()
    optimized = benchmark.pedantic(closed.optimize, rounds=3, iterations=1)

    removed = {
        proc: stats
        for proc, stats in optimized.optimize_stats.items()
        if any(stats)
    }
    plain_report = _explore(app, closed)
    optimized_report = _explore(app, optimized)

    lines = [
        "Ablation: optional clean-up passes (dce + toss minimization)",
        f"  closed nodes   : {_nodes(closed.cfgs)} -> {_nodes(optimized.cfgs)}",
        f"  procs touched  : {len(removed)}"
        + (
            " ("
            + ", ".join(
                f"{proc}: -{stats[0]} stores, -{stats[1]} toss"
                for proc, stats in sorted(removed.items())
            )
            + ")"
            if removed
            else ""
        ),
        "",
        "bounded exploration of the core call flow (2 lines):",
        f"  {'variant':<10} {'paths':>7} {'transitions':>12} {'distinct states':>16} "
        f"{'violations':>11}",
        f"  {'plain':<10} {plain_report.paths_explored:>7} "
        f"{plain_report.transitions_executed:>12} {plain_report.distinct_states:>16} "
        f"{len(plain_report.violations):>11}",
        f"  {'optimized':<10} {optimized_report.paths_explored:>7} "
        f"{optimized_report.transitions_executed:>12} "
        f"{optimized_report.distinct_states:>16} "
        f"{len(optimized_report.violations):>11}",
    ]
    if plain_report.truncated or optimized_report.truncated:
        lines.append(
            "  (both runs hit the path budget; distinct-state counts cover "
            "different frontiers and are informational only)"
        )
    record_table("ABL-OPT", lines)

    assert _nodes(optimized.cfgs) < _nodes(closed.cfgs)
    # Findings must agree within the same budget.
    assert bool(plain_report.violations) == bool(optimized_report.violations)
