"""Shared plumbing for the ``BENCH_*.json`` artifacts.

Every benchmark writes its numbers to a repo-root ``BENCH_<name>.json``
(with a copy under ``benchmarks/results/``) so the measurements are
machine-consumable across sessions and CI runs.  This module normalizes
the three concerns every bench script shares:

* :func:`provenance_block` — one uniform ``_provenance`` block per file
  (when it was generated, on what interpreter/platform/CPU count, at
  which commit), so a number can always be traced back to its run;
* :func:`merge_bench_json` — label-wise merging, so a filtered run
  (``-k "fig2 or fig3"``) refreshes only its own entries and never
  clobbers the rest of the file;
* :func:`baseline_delta_lines` — the ``--baseline`` delta summary (see
  ``benchmarks/conftest.py``): every row carrying a
  ``states_per_second`` field is matched by path against the baseline
  file and the throughput delta printed alongside the result table.

The CI ``perf-smoke`` job drives the same row discovery
(:func:`iter_rates`) through ``benchmarks/check_regression.py`` to fail
on throughput regressions against the committed baselines.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import subprocess
from typing import Any, Iterator

#: Repository root — the BENCH_*.json files live here so CI artifact
#: globs and README pointers find them.
ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Copies land next to the human-readable result tables.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def provenance_block() -> dict[str, Any]:
    """The uniform ``_provenance`` block stamped into every BENCH file."""
    commit = None
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=5,
        )
        commit = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "generated_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_commit": commit,
    }


def merge_bench_json(name: str, label: str, rows: Any) -> pathlib.Path:
    """Merge one experiment's ``rows`` under ``label`` into
    ``BENCH_<name>.json`` (root + results copy), preserving entries a
    filtered run did not regenerate and restamping ``_provenance``."""
    path = ROOT / f"BENCH_{name}.json"
    results: dict[str, Any] = {}
    if path.exists():
        try:
            results = json.loads(path.read_text())
        except (ValueError, OSError):
            results = {}
    results[label] = rows
    results["_provenance"] = provenance_block()
    text = json.dumps(results, indent=2) + "\n"
    path.write_text(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / path.name).write_text(text)
    return path


def iter_rates(
    data: Any, prefix: tuple[str, ...] = ()
) -> Iterator[tuple[tuple[str, ...], float]]:
    """Yield ``(path, states_per_second)`` for every row holding one.

    Walks nested dicts/lists; ``_provenance`` blocks are skipped so a
    regenerated file never "regresses" against its own metadata."""
    if isinstance(data, dict):
        rate = data.get("states_per_second")
        if isinstance(rate, (int, float)):
            yield prefix, float(rate)
        for key, value in data.items():
            if key == "_provenance":
                continue
            yield from iter_rates(value, prefix + (str(key),))
    elif isinstance(data, list):
        for index, value in enumerate(data):
            yield from iter_rates(value, prefix + (str(index),))


def baseline_delta_lines(
    baseline: dict[str, Any] | None, label: str, rows: Any
) -> list[str]:
    """Human-readable throughput deltas of ``rows`` against a baseline
    file's matching ``label`` entry (empty when there is no baseline or
    no overlapping rows)."""
    if not baseline or label not in baseline:
        return []
    current = dict(iter_rates(rows))
    old = dict(iter_rates(baseline[label]))
    lines: list[str] = []
    for path, new_rate in current.items():
        old_rate = old.get(path)
        if not old_rate:
            continue
        delta = (new_rate - old_rate) / old_rate
        where = "/".join(path) or label
        lines.append(
            f"  vs baseline {where}: {old_rate:,.0f} -> {new_rate:,.0f} "
            f"states/s ({delta:+.1%})"
        )
    if lines:
        lines.insert(0, "")
    return lines
