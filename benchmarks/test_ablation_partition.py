"""Experiment ABL-PARTITION — the Section 7 proposal, measured.

The paper's closing discussion proposes a static analysis that would
"determine the appropriate partitioning of the input domain, and, if it
is small enough, simplify the interface instead of eliminating it",
naming the resource-management system as the motivating case.  This
repository implements that analysis for the comparison-and-modulus
fragment (`repro.closing.partition`); the ablation measures what it buys
on the paper's own examples:

* the resource manager (Section 7's example): behaviour-set exactness;
* Figure 2: the strict upper approximation (1024 behaviours) collapses
  to the exact 2, because the input feeds only `% 2` and guards.
"""


from repro import System, close_program, collect_output_traces
from repro.closing import close_with_partitioning

RESOURCE_MANAGER = """
extern proc next_request();

proc main(n) {
    var i = 0;
    while (i < n) {
        var req;
        req = next_request();
        if (req < 10) {
            send(out, 'immediate');
        } else {
            if (req < 1000) {
                send(out, 'queued');
            } else {
                send(out, 'rejected');
            }
        }
        i = i + 1;
    }
}
"""

FIG2 = """
extern proc env();
proc main() {
    var x;
    x = env();
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""


def behaviors(cfgs, args=()):
    system = System(cfgs)
    system.add_env_sink("out")
    system.add_process("P", "main", list(args))
    return collect_output_traces(system, "out", max_depth=60)


def test_ablation_partition(benchmark, record_table):
    plain_rm = close_program(RESOURCE_MANAGER)
    part_rm, rm_report = benchmark(close_with_partitioning, RESOURCE_MANAGER)
    plain_fig2 = close_program(FIG2)
    part_fig2, fig2_report = close_with_partitioning(FIG2)

    rm_plain_traces = behaviors(plain_rm.cfgs, (2,))
    rm_part_traces = behaviors(part_rm.cfgs, (2,))
    fig2_plain_traces = behaviors(plain_fig2.cfgs)
    fig2_part_traces = behaviors(part_fig2.cfgs)

    rm_site = rm_report.sites[0]
    fig2_site = fig2_report.sites[0]

    assert rm_part_traces <= rm_plain_traces
    assert fig2_part_traces < fig2_plain_traces
    assert len(fig2_part_traces) == 2  # exact (vs 1024 upper approx)
    assert fig2_site.classes == 2
    assert rm_site.classes == 3

    record_table(
        "ABL-PARTITION",
        [
            "Section 7 proposal: simplify the interface instead of eliminating it",
            "",
            "resource manager (2 requests):",
            f"  partition             : {rm_site.classes} classes "
            f"{rm_site.representatives}",
            f"  behaviours plain      : {len(rm_plain_traces)}",
            f"  behaviours partitioned: {len(rm_part_traces)} (exact by construction)",
            "",
            "Figure 2 (10 sends):",
            f"  partition             : {fig2_site.classes} classes "
            f"{fig2_site.representatives}",
            f"  behaviours plain      : {len(fig2_plain_traces)} "
            "(the strict upper approximation)",
            f"  behaviours partitioned: {len(fig2_part_traces)} (exact)",
        ],
    )
