"""Experiment CLAIM-BRANCH — Section 1's branching claim.

Paper claim (prose): "our transformation preserves, or may even reduce,
the static degree of branching of the original code" (in contrast to the
naive environment, which branches |V_i|-fold at every input).

Measured form: for every inserted ``VS_toss``, its fan-out ``|succ(a)|``
(the number of *distinct* kept continuations) never exceeds the number
of control-flow paths through the erased region it replaces, and is
strictly smaller whenever erased branches reconverge.  We run the check
over a corpus of generated open programs and report the aggregate.
"""


from repro import close_program
from repro.closing.generators import generate_program

CORPUS_SEEDS = range(60)


def _close_corpus():
    return [close_program(generate_program(seed)) for seed in CORPUS_SEEDS]


def test_branching_degree(benchmark, record_table):
    corpus = benchmark.pedantic(_close_corpus, rounds=1, iterations=1)

    toss_count = 0
    preserved = 0
    strictly_reduced = 0
    max_fanout = 0
    total_fanout = 0
    total_region_paths = 0
    for closed in corpus:
        for stats in closed.proc_stats.values():
            assert stats.branching_preserved(), stats.proc
            for _, fanout, paths in stats.toss_details:
                toss_count += 1
                total_fanout += fanout
                total_region_paths += paths
                max_fanout = max(max_fanout, fanout)
                if fanout <= paths:
                    preserved += 1
                if fanout < paths:
                    strictly_reduced += 1

    record_table(
        "CLAIM-BRANCH",
        [
            "Section 1 claim: toss fan-out <= static paths through erased region",
            f"  corpus                  : {len(CORPUS_SEEDS)} generated open programs",
            f"  VS_toss nodes inserted  : {toss_count}",
            f"  fan-out <= region paths : {preserved}/{toss_count}",
            f"  strictly reduced        : {strictly_reduced}/{toss_count} "
            "(reconvergent erased branches deduplicated)",
            f"  max fan-out             : {max_fanout}",
            f"  mean fan-out            : {total_fanout / max(toss_count, 1):.2f}",
            f"  mean region paths       : {total_region_paths / max(toss_count, 1):.2f}",
        ],
    )
    assert preserved == toss_count
