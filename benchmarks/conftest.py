"""Shared benchmark utilities.

Every benchmark regenerates one evaluation artefact of the paper (a
figure, or a quantitative claim made in prose).  Besides the
pytest-benchmark timing table, each experiment writes its data table to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--baseline",
        action="store",
        default=None,
        help=(
            "Directory of baseline BENCH_*.json files (or one such file); "
            "each benchmark prints a states/sec delta summary against it "
            "alongside its result table."
        ),
    )


@pytest.fixture(scope="session")
def baseline_results(request) -> dict[str, dict]:
    """``name -> parsed baseline BENCH_<name>.json`` (empty without
    ``--baseline``)."""
    target = request.config.getoption("--baseline")
    if not target:
        return {}
    path = pathlib.Path(target)
    files = [path] if path.is_file() else sorted(path.glob("BENCH_*.json"))
    out: dict[str, dict] = {}
    for file in files:
        name = file.stem
        if name.startswith("BENCH_"):
            name = name[len("BENCH_") :]
        try:
            out[name] = json.loads(file.read_text())
        except (ValueError, OSError):
            continue
    return out


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Write (and echo) a result table for one experiment."""

    def write(experiment: str, lines: list[str]) -> None:
        text = "\n".join(lines) + "\n"
        (results_dir / f"{experiment}.txt").write_text(text)
        print(f"\n=== {experiment} ===\n{text}")

    return write
