"""Shared benchmark utilities.

Every benchmark regenerates one evaluation artefact of the paper (a
figure, or a quantitative claim made in prose).  Besides the
pytest-benchmark timing table, each experiment writes its data table to
``benchmarks/results/<experiment>.txt`` so the numbers survive the run;
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_table(results_dir):
    """Write (and echo) a result table for one experiment."""

    def write(experiment: str, lines: list[str]) -> None:
        text = "\n".join(lines) + "\n"
        (results_dir / f"{experiment}.txt").write_text(text)
        print(f"\n=== {experiment} ===\n{text}")

    return write
