"""Experiment BENCH-OBS — overhead of the observability layer.

The design rule of :mod:`repro.obs` is "zero cost when disabled, cheap
when enabled": every instrumentation site in the explorer is one
``if observer is not None`` branch, the tracer appends one record per
*path* (not per transition), and the profiler does a handful of
``Counter`` increments per fresh transition.  This experiment prices
that claim on the bounded 5ESS search: the same exhaustive DFS runs
bare, with the profiler, with the tracer, with the coverage collector,
and with profiler+tracer together, best-of-3 each, and the overhead
ratios land in the repo-root ``BENCH_obs.json`` (with a copy under
``benchmarks/results/`` next to the other artefacts).

A note on the targets: overhead here is a *ratio*, and the incremental
fingerprint + hot-loop work shrank its denominator by ~3.5x — the same
absolute per-transition observer cost now reads as a several-times
larger percentage.  The honest targets against the fast baseline are
profiler+tracer < 20 % and coverage < 30 % (coverage records a node
trace per transition, which the others do not), asserted with CI slack
so a loaded box does not flake; the recorded JSON holds the measured
ratios.
"""

from __future__ import annotations

import time

import pytest

from repro import SearchOptions, Tracer, run_search
from repro.fiveess import build_app
from benchmarks.bench_lib import merge_bench_json

pytestmark = pytest.mark.slow

BOUNDS = dict(max_depth=20, max_events=50_000)
REPEATS = 3

MODES = ("off", "profile", "trace", "coverage", "both")


def _fiveess_system():
    app = build_app(n_lines=2, calls_per_line=1)
    return app.make_system(app.close(), with_maintenance=False)


def _run_once(mode):
    system = _fiveess_system()
    tracer = Tracer() if mode in ("trace", "both") else None
    options = SearchOptions(
        profile=mode in ("profile", "both"),
        tracer=tracer,
        coverage=mode == "coverage",
        **BOUNDS,
    )
    started = time.perf_counter()
    report = run_search(system, options)
    elapsed = time.perf_counter() - started
    return elapsed, report, tracer


def test_bench_obs_overhead(record_table):
    timings = {}
    checks = {}
    for mode in MODES:
        best = None
        for _ in range(REPEATS):
            elapsed, report, tracer = _run_once(mode)
            best = elapsed if best is None else min(best, elapsed)
            checks[mode] = (report, tracer)
        timings[mode] = best

    # Same search regardless of observation (observers must not perturb).
    baseline_report = checks["off"][0]
    for mode in MODES[1:]:
        report = checks[mode][0]
        assert report.transitions_executed == baseline_report.transitions_executed
        assert report.states_visited == baseline_report.states_visited
    profile = checks["both"][0].profile
    assert profile.total_transitions == baseline_report.transitions_executed
    assert checks["both"][1].events  # the tracer actually recorded spans
    coverage = checks["coverage"][0].coverage
    assert coverage.nodes_covered  # the collector actually saw the run

    base = timings["off"]
    overhead = {
        mode: (timings[mode] - base) / base if base else 0.0
        for mode in MODES[1:]
    }

    states = baseline_report.states_visited
    payload = {
        "bounds": BOUNDS,
        "repeats": REPEATS,
        "transitions": baseline_report.transitions_executed,
        "paths": baseline_report.paths_explored,
        "states": states,
        "modes": {
            mode: {
                "wall_time_s": round(timings[mode], 4),
                "states_per_second": round(states / timings[mode])
                if timings[mode]
                else 0,
                "overhead": round(overhead[mode], 4) if mode != "off" else 0.0,
            }
            for mode in MODES
        },
        "target": "both < 0.20, coverage < 0.30",
    }
    merge_bench_json("obs", "5ess_bounded", payload)

    lines = [
        "Observability overhead on the bounded 5ESS DFS (best of "
        f"{REPEATS}, {baseline_report.transitions_executed} transitions)",
        "",
        f"  {'mode':<8} {'wall (s)':>10} {'overhead':>10}",
    ]
    lines.append(f"  {'off':<8} {timings['off']:>10.4f} {'—':>10}")
    for mode in MODES[1:]:
        lines.append(
            f"  {mode:<8} {timings[mode]:>10.4f} {overhead[mode]:>9.1%}"
        )
    record_table("BENCH_obs", lines)

    # Wide bounds so shared CI machines do not flake; the recorded JSON
    # holds the honest numbers against the design targets (both < 20%,
    # coverage < 30% — ratios against the post-fingerprint fast
    # baseline; coverage pays for a node trace per transition, which
    # the others do not record).
    assert overhead["both"] < 0.30, overhead
    assert overhead["coverage"] < 0.40, overhead
