"""Experiment CLAIM-NAIVE — Section 3's intractability claim.

Paper claim (prose): the naive approach — composing the system with an
explicit most-general environment E_S — "generates a closed system whose
state space is typically so large that it renders any analysis
intractable: for instance, E_S is infinitely branching whenever the set
of inputs is infinite", whereas the transformation eliminates the
interface with bounded branching.

We sweep the environment's input-domain size |V| for an open server that
consumes 3 inputs, and compare the exhaustive exploration cost of the
naive closing (|V|^3 paths) against the automatically closed system
(2^3 paths — only the *relevant* distinction, even vs odd, remains).
The crossover shape of the paper holds: naive explodes with |V|, the
closed system is flat.
"""


from repro import SearchOptions, System, close_naively, close_program, run_search

OPEN_SERVER = """
extern proc get_req();
proc server(n) {
    var i = 0;
    while (i < n) {
        var req;
        req = get_req();
        if (req % 2 == 0) { send(log, 'even'); } else { send(log, 'odd'); }
        i = i + 1;
    }
}
"""

DOMAIN_SIZES = [2, 4, 8, 16, 32]
REQUESTS = 3


def build_system(cfgs):
    system = System(cfgs)
    system.add_env_sink("log")
    system.add_process("S", "server", [REQUESTS])
    return system


def explore_fully(cfgs):
    return run_search(build_system(cfgs), SearchOptions(max_depth=50, por=False))


def test_naive_vs_closed(benchmark, record_table):
    lines = [
        "Section 3 claim: naive explicit environment vs automatic closing",
        f"(server consuming {REQUESTS} inputs; exhaustive exploration)",
        f"{'|V|':>5} {'naive paths':>12} {'naive transitions':>18} "
        f"{'closed paths':>13} {'closed transitions':>19}",
    ]

    auto = close_program(OPEN_SERVER)
    auto_report = explore_fully(auto.cfgs)

    naive_paths = []
    for domain_size in DOMAIN_SIZES:
        naive = close_naively(OPEN_SERVER, {"get_req": list(range(domain_size))})
        report = explore_fully(naive.cfgs)
        naive_paths.append(report.paths_explored)
        lines.append(
            f"{domain_size:>5} {report.paths_explored:>12} "
            f"{report.transitions_executed:>18} {auto_report.paths_explored:>13} "
            f"{auto_report.transitions_executed:>19}"
        )
        assert report.paths_explored == domain_size**REQUESTS

    assert auto_report.paths_explored == 2**REQUESTS
    # The blow-up is polynomial of degree REQUESTS in |V|; the closed
    # system is constant.
    assert naive_paths[-1] / naive_paths[0] == (DOMAIN_SIZES[-1] / DOMAIN_SIZES[0]) ** REQUESTS

    lines.append(
        f"closed system is flat at {auto_report.paths_explored} paths "
        f"(= 2^{REQUESTS}: only the even/odd distinction matters)"
    )
    record_table("CLAIM-NAIVE", lines)

    # Benchmark the exhaustive exploration of the closed system.
    benchmark(explore_fully, auto.cfgs)
