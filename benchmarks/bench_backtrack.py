"""Experiment BENCH-BACKTRACK — replay vs restore backtracking.

The classic VeriSoft explorer is stateless: backtracking re-executes
the whole path prefix from the initial state, so deep searches spend
most of their transitions replaying old ground (``replay_fraction``).
The restore-based mode keeps undo-journal checkpoints at choice points
and rewinds the live run in O(changes) instead.  This experiment runs
the identical bounded DFS over Figure 2, Figure 3 and the Section 6
call-processing application in both modes and records wall time,
replay fraction and total executed transitions (fresh + replayed).

On the 5ESS case each mode additionally runs under the compiled
execution engine — the end-to-end configuration the incremental
fingerprint + hot-loop work targets ("as fast as the compiled
engine") — with full counter parity asserted across all four variants.

Asserted here (the variants must differ *only* in how they backtrack
and how fast they step):

* states / transitions / paths / violation groups identical;
* restore performs zero replays (``replayed_transitions == 0``,
  ``replay_fraction == 0``) in sequential DFS;
* on the 5ESS case the replay mode executes at least 2x more total
  transitions than restore — the work the undo journal saves.

Numbers land in the repo-root ``BENCH_backtrack.json`` (CI uploads the
``BENCH_*.json`` artifacts) with a copy under ``benchmarks/results/``.
Each parametrized case merges its rows into the JSON, so a filtered run
(``-k "fig2 or fig3"``) refreshes only its own entries; ``--baseline``
prints states/sec deltas against a previous run's files.
"""

from __future__ import annotations

import time

import pytest

from repro import SearchOptions, run_search
from repro.fiveess import build_app
from benchmarks.bench_lib import baseline_delta_lines, merge_bench_json
from tests.statespace.conftest import FIG2_SRC, FIG3_SRC, figure_system

pytestmark = pytest.mark.slow

PARITY_KEYS = ("states", "transitions", "paths", "toss_points", "violation_groups")

#: Wall time is best-of-N (counters are asserted identical across
#: repeats, so only the timing is picked): shared CI hosts and the
#: container VM show 20-30% run-to-run noise, which best-of-2 largely
#: absorbs without tripling the benchmark's runtime.
REPEATS = 2


def _fiveess_system():
    app = build_app(n_lines=2, calls_per_line=1)
    return app.make_system(app.close(), with_maintenance=False)


#: label -> (system factory, bounds, (variant -> (backtrack, engine))).
#: The figure searches are small enough that the engine dimension adds
#: nothing; the bounded 5ESS case carries the headline end-to-end
#: throughput, so it runs both modes under both engines.
CASES = {
    "fig2": (
        lambda: figure_system(FIG2_SRC, "p"),
        dict(max_depth=60),
        {"replay": ("replay", "walk"), "restore": ("restore", "walk")},
    ),
    "fig3": (
        lambda: figure_system(FIG3_SRC, "q"),
        dict(max_depth=60),
        {"replay": ("replay", "walk"), "restore": ("restore", "walk")},
    ),
    "5ess": (
        lambda: _fiveess_system(),
        dict(max_depth=20, max_events=50_000),
        {
            "replay": ("replay", "walk"),
            "restore": ("restore", "walk"),
            "replay_compiled": ("replay", "compiled"),
            "restore_compiled": ("restore", "compiled"),
        },
    ),
}


def _run_one(build, bounds, mode, engine):
    best = None
    for _ in range(REPEATS):
        system = build()
        if engine == "compiled":
            system.compiled_program()  # compile outside the timed region
        options = SearchOptions(backtrack=mode, engine=engine, **bounds)
        started = time.perf_counter()
        report = run_search(system, options)
        elapsed = time.perf_counter() - started
        stats = report.stats
        assert stats.engine == engine, f"fell back to {stats.engine}"
        if best is not None:
            assert stats.states_visited == best[1].stats.states_visited
        if best is None or elapsed < best[0]:
            best = (elapsed, report)
    elapsed, report = best
    stats = report.stats
    total = stats.transitions_executed + stats.replayed_transitions
    return {
        "backtrack": stats.backtrack,
        "engine": stats.engine,
        "states": stats.states_visited,
        "transitions": stats.transitions_executed,
        "toss_points": stats.toss_points,
        "paths": stats.paths_explored,
        "violation_groups": len(report.triage()),
        "replays": stats.replays,
        "replayed_transitions": stats.replayed_transitions,
        "total_transitions": total,
        "replay_fraction": round(stats.replay_fraction or 0.0, 4),
        "restores": stats.restores,
        "undo_entries": stats.undo_entries,
        "checkpoint_memory_bytes": stats.checkpoint_memory_bytes,
        "wall_time_s": round(elapsed, 4),
        "states_per_second": round(stats.states_per_second),
    }


@pytest.mark.parametrize("label", list(CASES))
def test_bench_backtrack(label, record_table, baseline_results):
    build, bounds, variants = CASES[label]
    rows = {
        variant: _run_one(build, bounds, mode, engine)
        for variant, (mode, engine) in variants.items()
    }
    replay_row, restore_row = rows["replay"], rows["restore"]

    # Identical search, different backtracking/stepping cost — nothing
    # else: every variant must agree with walk-engine replay.
    for variant, row in rows.items():
        for key in PARITY_KEYS:
            assert row[key] == replay_row[key], (
                f"{label}: {key} differs between replay and {variant}: "
                f"{replay_row[key]} vs {row[key]}"
            )
    for variant, row in rows.items():
        if row["backtrack"] != "restore":
            continue
        assert row["replays"] == 0, variant
        assert row["replayed_transitions"] == 0, variant
        assert row["replay_fraction"] == 0.0, variant
        assert row["restores"] > 0, variant

    if label == "5ess":
        ratio = replay_row["total_transitions"] / restore_row["total_transitions"]
        restore_row["transition_ratio_vs_replay"] = round(ratio, 2)
        assert ratio >= 2.0, (
            f"5ess: replay executed only {ratio:.2f}x the transitions of "
            "restore (expected >= 2x)"
        )
        speedup = (
            rows["restore_compiled"]["states_per_second"]
            / max(replay_row["states_per_second"], 1)
        )
        rows["restore_compiled"]["speedup_vs_walk_replay"] = round(speedup, 2)

    merge_bench_json("backtrack", label, rows)

    lines = [
        f"Backtracking modes on {label} (bounds {bounds})",
        "",
        f"  {'variant':<17} {'states':>7} {'total-trans':>12} {'replayed':>9} "
        f"{'replay%':>8} {'time':>8} {'states/s':>10}",
    ]
    for variant, row in rows.items():
        lines.append(
            f"  {variant:<17} {row['states']:>7} {row['total_transitions']:>12} "
            f"{row['replayed_transitions']:>9} {row['replay_fraction']:>8.1%} "
            f"{row['wall_time_s']:>7.2f}s {row['states_per_second']:>10,}"
        )
    if "transition_ratio_vs_replay" in restore_row:
        lines.append(
            "  restore executes "
            f"{restore_row['transition_ratio_vs_replay']}x fewer total "
            "transitions than replay"
        )
    lines.extend(baseline_delta_lines(baseline_results.get("backtrack"), label, rows))
    lines.append("wrote BENCH_backtrack.json")
    record_table(f"BENCH_backtrack_{label}", lines)
