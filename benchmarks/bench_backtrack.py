"""Experiment BENCH-BACKTRACK — replay vs restore backtracking.

The classic VeriSoft explorer is stateless: backtracking re-executes
the whole path prefix from the initial state, so deep searches spend
most of their transitions replaying old ground (``replay_fraction``).
The restore-based mode keeps undo-journal checkpoints at choice points
and rewinds the live run in O(changes) instead.  This experiment runs
the identical bounded DFS over Figure 2, Figure 3 and the Section 6
call-processing application in both modes and records wall time,
replay fraction and total executed transitions (fresh + replayed).

Asserted here (the modes must differ *only* in how they backtrack):

* states / transitions / paths / violation groups identical;
* restore performs zero replays (``replayed_transitions == 0``,
  ``replay_fraction == 0``) in sequential DFS;
* on the 5ESS case the replay mode executes at least 2x more total
  transitions than restore — the work the undo journal saves.

Numbers land in the repo-root ``BENCH_backtrack.json`` (CI uploads the
``BENCH_*.json`` artifacts) with a copy under ``benchmarks/results/``.
Each parametrized case merges its rows into the JSON, so a filtered run
(``-k "fig2 or fig3"``) refreshes only its own entries.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro import SearchOptions, run_search
from repro.fiveess import build_app
from tests.statespace.conftest import FIG2_SRC, FIG3_SRC, figure_system

pytestmark = pytest.mark.slow

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_backtrack.json"
BENCH_JSON_COPY = pathlib.Path(__file__).parent / "results" / "BENCH_backtrack.json"

MODES = ("replay", "restore")

PARITY_KEYS = ("states", "transitions", "paths", "toss_points", "violation_groups")


def _fiveess_system():
    app = build_app(n_lines=2, calls_per_line=1)
    return app.make_system(app.close(), with_maintenance=False)


CASES = {
    "fig2": (lambda: figure_system(FIG2_SRC, "p"), dict(max_depth=60)),
    "fig3": (lambda: figure_system(FIG3_SRC, "q"), dict(max_depth=60)),
    "5ess": (lambda: _fiveess_system(), dict(max_depth=20, max_events=50_000)),
}


def _run_one(build, bounds, mode):
    system = build()
    options = SearchOptions(backtrack=mode, **bounds)
    started = time.perf_counter()
    report = run_search(system, options)
    elapsed = time.perf_counter() - started
    stats = report.stats
    total = stats.transitions_executed + stats.replayed_transitions
    return {
        "backtrack": stats.backtrack,
        "states": stats.states_visited,
        "transitions": stats.transitions_executed,
        "toss_points": stats.toss_points,
        "paths": stats.paths_explored,
        "violation_groups": len(report.triage()),
        "replays": stats.replays,
        "replayed_transitions": stats.replayed_transitions,
        "total_transitions": total,
        "replay_fraction": round(stats.replay_fraction or 0.0, 4),
        "restores": stats.restores,
        "undo_entries": stats.undo_entries,
        "checkpoint_memory_bytes": stats.checkpoint_memory_bytes,
        "wall_time_s": round(elapsed, 4),
        "states_per_second": round(stats.states_per_second),
    }


def _merge_json(label, rows):
    """Merge this case's rows into the shared JSON (root + results copy),
    preserving entries a filtered run did not regenerate."""
    results = {}
    if BENCH_JSON.exists():
        try:
            results = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            results = {}
    results[label] = rows
    text = json.dumps(results, indent=2) + "\n"
    BENCH_JSON.write_text(text)
    BENCH_JSON_COPY.parent.mkdir(exist_ok=True)
    BENCH_JSON_COPY.write_text(text)


@pytest.mark.parametrize("label", list(CASES))
def test_bench_backtrack(label, record_table):
    build, bounds = CASES[label]
    rows = {mode: _run_one(build, bounds, mode) for mode in MODES}
    replay_row, restore_row = rows["replay"], rows["restore"]

    # Identical search, different backtracking cost — nothing else.
    for key in PARITY_KEYS:
        assert replay_row[key] == restore_row[key], (
            f"{label}: {key} differs between modes: "
            f"{replay_row[key]} vs {restore_row[key]}"
        )
    assert restore_row["replays"] == 0
    assert restore_row["replayed_transitions"] == 0
    assert restore_row["replay_fraction"] == 0.0
    assert restore_row["restores"] > 0

    if label == "5ess":
        ratio = replay_row["total_transitions"] / restore_row["total_transitions"]
        restore_row["transition_ratio_vs_replay"] = round(ratio, 2)
        assert ratio >= 2.0, (
            f"5ess: replay executed only {ratio:.2f}x the transitions of "
            "restore (expected >= 2x)"
        )

    _merge_json(label, rows)

    lines = [
        f"Backtracking modes on {label} (bounds {bounds})",
        "",
        f"  {'mode':<8} {'states':>7} {'total-trans':>12} {'replayed':>9} "
        f"{'replay%':>8} {'time':>8} {'states/s':>10}",
    ]
    for mode in MODES:
        row = rows[mode]
        lines.append(
            f"  {mode:<8} {row['states']:>7} {row['total_transitions']:>12} "
            f"{row['replayed_transitions']:>9} {row['replay_fraction']:>8.1%} "
            f"{row['wall_time_s']:>7.2f}s {row['states_per_second']:>10,}"
        )
    if "transition_ratio_vs_replay" in restore_row:
        lines.append(
            "  restore executes "
            f"{restore_row['transition_ratio_vs_replay']}x fewer total "
            "transitions than replay"
        )
    lines.append(f"wrote {BENCH_JSON.name}")
    record_table(f"BENCH_backtrack_{label}", lines)
