"""Experiment PERF-PARALLEL — parallel stateless exploration scaling.

The stateless explorer backtracks by replay from the initial state, so
disjoint subtrees of the choice tree can be searched by independent OS
processes (``repro.verisoft.parallel``).  This experiment explores the
Section 6 call-processing application sequentially and with worker
pools of 2 and 4, verifies the merged reports are *identical in
summary* to the sequential search, and records wall time, throughput
and partial-order-reduction telemetry per run.

On a single-core container the pool cannot beat the sequential run (the
workers time-slice one CPU and pay fork/pickle overhead); the speedup
assertion is therefore gated on the machine actually having multiple
cores.  The table always records the honest numbers either way.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import SearchOptions, run_search
from repro.fiveess import build_app

pytestmark = pytest.mark.slow

#: Large enough that worker fan-out amortises fork/unpickle overhead
#: (~45k states, ~25s sequential on one 2020s core) while keeping the
#: three runs inside a few minutes.
MAX_DEPTH = 24
MAX_EVENTS = 100_000


def _options(strategy: str, jobs: int = 0) -> SearchOptions:
    return SearchOptions(
        strategy=strategy,
        jobs=jobs,
        max_depth=MAX_DEPTH,
        por=True,
        max_events=MAX_EVENTS,
    )


def _row(label: str, report, elapsed: float) -> str:
    stats = report.stats
    ratio = stats.reduction_ratio
    return (
        f"  {label:<12} {elapsed:>8.2f}s {stats.states_visited:>9} "
        f"{stats.states_visited / elapsed:>11,.0f} "
        f"{ratio if ratio is not None else 0:>9.3f} "
        f"{stats.prefixes:>9}"
    )


def test_parallel_scaling(record_table):
    app = build_app(n_lines=2, calls_per_line=1)
    closed = app.close()
    system = app.make_system(closed, with_maintenance=False)

    t0 = time.perf_counter()
    sequential = run_search(system, _options("dfs"))
    t_seq = time.perf_counter() - t0

    runs = {}
    for jobs in (2, 4):
        t0 = time.perf_counter()
        runs[jobs] = run_search(system, _options("parallel", jobs=jobs))
        runs[jobs].elapsed = time.perf_counter() - t0

    # The tentpole guarantee: partitioned search covers exactly the same
    # state space and finds exactly the same events.
    for jobs, report in runs.items():
        assert report.summary() == sequential.summary(), f"jobs={jobs} diverged"

    cores = os.cpu_count() or 1
    speedup4 = t_seq / runs[4].elapsed

    lines = [
        "Parallel stateless exploration: 5ESS app (2 lines, mobility slice)",
        f"  host cores: {cores}; sequential summary: {sequential.summary()}",
        "",
        f"  {'mode':<12} {'wall':>9} {'states':>9} {'states/s':>11} "
        f"{'POR':>9} {'prefixes':>9}",
        _row("sequential", sequential, t_seq),
        _row("--jobs 2", runs[2], runs[2].elapsed),
        _row("--jobs 4", runs[4], runs[4].elapsed),
        "",
        f"  speedup at 2 jobs: {t_seq / runs[2].elapsed:.2f}x",
        f"  speedup at 4 jobs: {speedup4:.2f}x",
        f"  replay overhead (seq): {sequential.stats.replay_overhead:.0%}",
        f"  sleep-set prunes (seq): {sequential.stats.sleep_prunes}",
    ]
    if cores < 4:
        lines.append(
            f"  NOTE: only {cores} core(s) available; speedup is "
            "fork/pickle overhead-bound, not a parallelism measurement"
        )
    record_table("PERF-PARALLEL", lines)

    if cores >= 4:
        assert speedup4 >= 1.5, f"expected >=1.5x at 4 jobs, got {speedup4:.2f}x"
