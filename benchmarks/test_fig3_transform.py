"""Experiment FIG3 — Figure 3 of the paper.

Paper artefact: the transformation of procedure ``q`` (which sends the
ten least-significant bits of its input) and the claims that (a) the
algorithm transforms the functionally distinct p (Figure 2) and q to the
*same* closed program, and (b) for q "the resulting closed program is
equivalent to q combined with its most general environment E_S" — an
optimal translation.
"""


from repro import System, close_program, collect_output_traces

Q_SRC = """
proc q(x) {
    var cnt = 0;
    while (cnt < 10) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""

P_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""


def open_behaviors():
    traces = set()
    for value in range(1024):
        system = System(Q_SRC)
        system.add_env_sink("out")
        system.add_process("P", "q", [value])
        traces |= collect_output_traces(system, "out", max_depth=40)
    return traces


def behaviors_of(cfgs, proc):
    system = System(cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return collect_output_traces(system, "out", max_depth=40)


def _shape(cfg):
    index = {nid: i for i, nid in enumerate(sorted(cfg.nodes))}
    nodes = tuple(
        (index[nid], cfg.nodes[nid].kind.name, cfg.nodes[nid].describe())
        for nid in sorted(cfg.nodes)
    )
    arcs = tuple(
        sorted((index[a.src], index[a.dst], a.guard.describe()) for a in cfg.arcs)
    )
    return nodes, arcs


def test_fig3_transformation(benchmark, record_table):
    closed_q = benchmark(close_program, Q_SRC, env_params={"q": ["x"]})
    closed_p = close_program(P_SRC, env_params={"p": ["x"]})

    open_set = open_behaviors()
    closed_set = behaviors_of(closed_q.cfgs, "q")
    same_graph = _shape(closed_p.cfgs["p"]) == _shape(closed_q.cfgs["q"])

    assert open_set == closed_set  # optimal translation
    assert same_graph  # p and q close to the same program

    stats = closed_q.proc_stats["q"]
    record_table(
        "FIG3",
        [
            "Figure 3: closing procedure q (optimal translation)",
            f"  nodes before -> after   : {stats.nodes_before} -> {stats.nodes_after}",
            f"  eliminated nodes        : {stats.eliminated}",
            f"  VS_toss inserted        : {stats.toss_nodes} (bound 1)",
            f"  parameters removed      : {', '.join(stats.removed_params)}",
            f"  transform time          : {closed_q.elapsed_seconds * 1e3:.3f} ms",
            f"  |behaviours(q x Es)|    : {len(open_set)}",
            f"  |behaviours(q')|        : {len(closed_set)}",
            f"  behaviour sets equal    : {open_set == closed_set}",
            f"  G'_p identical to G'_q  : {same_graph}",
        ],
    )
