"""Experiment FIG2 — Figure 2 of the paper.

Paper artefact: the transformation of procedure ``p`` (the even/odd
sender whose branch direction is fixed by one environment input) and the
accompanying claim that "the resulting closed program is a strict upper
approximation of p combined with its most general environment E_S: for
no value of x can G_p send a mixture of even and odd values, but for
certain combinations of VS_toss results, G'_p can."

Regenerated rows:

* transformation statistics (nodes before/after, toss nodes, removed
  parameters) — the content of the figure;
* |behaviours(p × E_S)| vs |behaviours(p')| and the strictness check.
"""


from repro import System, close_program, collect_output_traces
from repro.cfg import NodeKind

P_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""


def open_behaviors():
    traces = set()
    for value in range(1024):
        system = System(P_SRC)
        system.add_env_sink("out")
        system.add_process("P", "p", [value])
        traces |= collect_output_traces(system, "out", max_depth=40)
    return traces


def closed_behaviors(closed):
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", "p", [])
    return collect_output_traces(system, "out", max_depth=40)


def test_fig2_transformation(benchmark, record_table):
    closed = benchmark(close_program, P_SRC, env_params={"p": ["x"]})

    stats = closed.proc_stats["p"]
    cfg = closed.cfgs["p"]
    open_set = open_behaviors()
    closed_set = closed_behaviors(closed)

    assert stats.removed_params == ("x",)
    assert len(cfg.nodes_of_kind(NodeKind.TOSS)) == 1
    assert open_set < closed_set  # strict upper approximation
    assert len(open_set) == 2
    assert len(closed_set) == 1024

    record_table(
        "FIG2",
        [
            "Figure 2: closing procedure p (strict upper approximation)",
            f"  nodes before -> after : {stats.nodes_before} -> {stats.nodes_after}",
            f"  eliminated nodes      : {stats.eliminated}",
            f"  VS_toss inserted      : {stats.toss_nodes} (bound 1)",
            f"  parameters removed    : {', '.join(stats.removed_params)}",
            f"  transform time        : {closed.elapsed_seconds * 1e3:.3f} ms",
            f"  |behaviours(p x Es)|  : {len(open_set)}",
            f"  |behaviours(p')|      : {len(closed_set)}",
            f"  strict inclusion      : {open_set < closed_set}",
        ],
    )
