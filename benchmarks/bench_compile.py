"""Experiment BENCH-COMPILE — walking vs compiled execution engine.

The compiled engine (``repro.runtime.compile``) translates each
procedure's CFG into specialized Python closures; the walking
interpreter re-inspects the CFG on every step.  Both implement the same
``ExecutionEngine`` stepper contract and must produce *identical*
searches — same states, transitions, toss points, paths and violation
groups — so the only thing allowed to differ is speed.

Three experiment families, all merged into ``BENCH_compile.json``
(repo root, CI uploads the ``BENCH_*.json`` artifacts; a copy lands in
``benchmarks/results/``):

* **end-to-end searches** (fig2 / fig3 / bounded 5ESS): ``run_search``
  under each engine, counter-for-counter parity asserted, wall time and
  states/sec recorded.  End-to-end gains are bounded by Amdahl's law —
  the scheduler, POR and bookkeeping are engine-independent.
* **engine-level drive** (``5ess_engine``): seeded random schedules of
  the bounded 5ESS system are recorded once, then replayed directly
  against fresh engine steppers of each kind, isolating the engine's
  own per-choice cost from scheduler overhead.
* **dispatch kernel** (``kernel``): a computation-heavy closed program
  (long invisible runs between visible operations) — the compiler's
  best case, dominated by node dispatch and expression evaluation.

Asserted floors: parity everywhere; the compiled engine at least 2x on
the 5ESS engine-level drive (communication-dominated, ~4 invisible
nodes per choice) and at least 3x on the dispatch kernel.  The filtered
CI run (``-k "fig2 or fig3"``) exercises the parity assertions and the
JSON writer in seconds.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import SearchOptions, System, run_search
from repro.fiveess import build_app
from repro.runtime.errors import DivergenceError, RuntimeFault
from benchmarks.bench_lib import baseline_delta_lines, merge_bench_json
from tests.statespace.conftest import FIG2_SRC, FIG3_SRC, figure_system

pytestmark = pytest.mark.slow

ENGINES = ("walk", "compiled")

PARITY_KEYS = ("states", "transitions", "paths", "toss_points", "violation_groups")

#: Computation-heavy closed RC program: ~200 invisible nodes per
#: visible send — node dispatch and expression evaluation dominate.
KERNEL_SRC = """
proc checksum(seed, rounds) {
    var acc;
    acc = seed;
    var i;
    i = 0;
    while (i < rounds) {
        acc = (acc * 31 + i) % 65521;
        if (acc % 2 == 0) { acc = acc + 7; } else { acc = acc - 3; }
        i = i + 1;
    }
    return acc;
}
proc main() {
    var k;
    k = 0;
    while (k < 50) {
        var c;
        c = checksum(k, 40);
        send(out, c);
        k = k + 1;
    }
}
"""


def _fiveess_system(calls_per_line: int = 1):
    app = build_app(n_lines=2, calls_per_line=calls_per_line)
    return app.make_system(app.close(), with_maintenance=False)


def _kernel_system():
    system = System(KERNEL_SRC)
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


# ---------------------------------------------------------------------------
# End-to-end searches
# ---------------------------------------------------------------------------

CASES = {
    "fig2": (lambda: figure_system(FIG2_SRC, "p"), dict(max_depth=60)),
    "fig3": (lambda: figure_system(FIG3_SRC, "q"), dict(max_depth=60)),
    "5ess": (
        lambda: _fiveess_system(),
        dict(max_depth=24, max_events=50_000),
    ),
}


def _search_row(build, bounds, engine):
    system = build()
    if engine == "compiled":
        system.compiled_program()  # compile outside the timed region
    options = SearchOptions(engine=engine, **bounds)
    started = time.perf_counter()
    report = run_search(system, options)
    elapsed = time.perf_counter() - started
    stats = report.stats
    assert stats.engine == engine, f"fell back to {stats.engine}"
    return {
        "engine": stats.engine,
        "states": stats.states_visited,
        "transitions": stats.transitions_executed,
        "toss_points": stats.toss_points,
        "paths": stats.paths_explored,
        "violation_groups": len(report.triage()),
        "triage_signatures": sorted(g.signature for g in report.triage()),
        "wall_time_s": round(elapsed, 4),
        "states_per_second": round(stats.states_per_second),
    }


@pytest.mark.parametrize("label", list(CASES))
def test_bench_compile_search(label, record_table, baseline_results):
    build, bounds = CASES[label]
    rows = {engine: _search_row(build, bounds, engine) for engine in ENGINES}
    walk_row, compiled_row = rows["walk"], rows["compiled"]

    # Identical search, different stepper cost — nothing else.
    for key in PARITY_KEYS:
        assert walk_row[key] == compiled_row[key], (
            f"{label}: {key} differs between engines: "
            f"{walk_row[key]} vs {compiled_row[key]}"
        )
    assert walk_row["triage_signatures"] == compiled_row["triage_signatures"]

    speedup = walk_row["wall_time_s"] / max(compiled_row["wall_time_s"], 1e-9)
    compiled_row["speedup_vs_walk"] = round(speedup, 2)
    merge_bench_json("compile", label, rows)

    lines = [
        f"Execution engines on {label}, end-to-end search (bounds {bounds})",
        "",
        f"  {'engine':<9} {'states':>7} {'transitions':>12} {'time':>8} {'states/s':>10}",
    ]
    for engine in ENGINES:
        row = rows[engine]
        lines.append(
            f"  {engine:<9} {row['states']:>7} {row['transitions']:>12} "
            f"{row['wall_time_s']:>7.2f}s {row['states_per_second']:>10,}"
        )
    lines.append(f"  end-to-end speedup: {speedup:.2f}x (engine cost amortized")
    lines.append("  against engine-independent scheduler/POR work)")
    lines.extend(baseline_delta_lines(baseline_results.get("compile"), label, rows))
    lines.append("wrote BENCH_compile.json")
    record_table(f"BENCH_compile_{label}", lines)


# ---------------------------------------------------------------------------
# Per-phase breakdown: where do the wall seconds of a search go?
# ---------------------------------------------------------------------------


def test_bench_compile_phases(record_table):
    """Per-phase wall-time breakdown of the bounded 5ESS search.

    Runs the profiled search (``profile=True`` wires the explorer's
    ``phase_profile`` hook into :class:`repro.obs.HotSpotProfiler`)
    under each engine, with state caching on so every phase — engine
    stepping, canonical fingerprints, POR analysis, cache lookups — is
    exercised, and records seconds and shares per phase.  The engine
    phase is where compilation bites; everything else is
    engine-independent, which is exactly the Amdahl ceiling the
    end-to-end rows show.
    """
    bounds = dict(max_depth=20, max_events=50_000, state_cache="exact")
    rows = {}
    for engine in ENGINES:
        system = _fiveess_system()
        if engine == "compiled":
            system.compiled_program()
        options = SearchOptions(engine=engine, profile=True, **bounds)
        started = time.perf_counter()
        report = run_search(system, options)
        elapsed = time.perf_counter() - started
        phases = dict(report.profile.phases)
        accounted = sum(phases.values())
        rows[engine] = {
            "engine": engine,
            "states": report.stats.states_visited,
            "wall_time_s": round(elapsed, 4),
            "states_per_second": round(report.stats.states_per_second),
            "phases_s": {k: round(v, 4) for k, v in sorted(phases.items())},
            "phase_share": {
                k: round(v / elapsed, 4) for k, v in sorted(phases.items())
            },
            "unattributed_s": round(elapsed - accounted, 4),
        }
    # Both engines spend their non-engine time in the same places; the
    # profiled phases must account for a meaningful share of the wall.
    for engine, row in rows.items():
        assert row["phases_s"].get("engine", 0.0) > 0.0, engine
        assert sum(row["phases_s"].values()) < row["wall_time_s"], engine
    merge_bench_json("compile", "phases_5ess", rows)

    phase_names = sorted(
        {name for row in rows.values() for name in row["phases_s"]}
    )
    lines = [
        f"Per-phase wall-time breakdown, bounded 5ESS search ({bounds})",
        "",
        f"  {'engine':<9} " + " ".join(f"{name:>12}" for name in phase_names)
        + f" {'other':>12} {'total':>9}",
    ]
    for engine in ENGINES:
        row = rows[engine]
        cells = " ".join(
            f"{row['phases_s'].get(name, 0.0):>11.3f}s" for name in phase_names
        )
        lines.append(
            f"  {engine:<9} {cells} {row['unattributed_s']:>11.3f}s "
            f"{row['wall_time_s']:>8.3f}s"
        )
    lines.append("wrote BENCH_compile.json")
    record_table("BENCH_compile_phases", lines)


# ---------------------------------------------------------------------------
# Engine-level measurements: recorded schedules replayed on raw steppers
# ---------------------------------------------------------------------------


class _Recorder:
    """Wraps a process's engine, recording every resume value so the
    same per-process request/answer script can be replayed later
    against a fresh stepper of either kind."""

    def __init__(self, engine, script):
        self._engine = engine
        self._script = script

    def start(self):
        return self._engine.start()

    def resume(self, value):
        self._script.append(value)
        return self._engine.resume(value)

    def __getattr__(self, name):
        return getattr(self._engine, name)


def _record_scripts(make_system, seeds, max_steps=3000):
    """Drive seeded random schedules, returning per-process resume
    scripts (one dict per seed)."""
    scripts_per_seed = []
    for seed in seeds:
        rng = random.Random(seed)
        run = make_system().start()
        scripts = {p.name: [] for p in run.processes}
        for p in run.processes:
            p._interpreter = _Recorder(p._interpreter, scripts[p.name])
        run.start_processes()
        for _ in range(max_steps):
            pending = run.toss_pending()
            if pending is not None:
                run.answer_toss(pending, rng.randint(0, pending.toss_request.bound))
                continue
            enabled = run.enabled_processes()
            if not enabled:
                break
            run.execute_visible(rng.choice(enabled))
        scripts_per_seed.append(scripts)
    return scripts_per_seed


def _replay_scripts(system, engine, scripts_per_seed, reps):
    """Replay every recorded script against fresh steppers; returns
    (elapsed_seconds, choices, request_log).  The request log (op names
    in order, first pass only) doubles as the parity check."""
    choices = 0
    request_log = []
    log_requests = True
    started = time.perf_counter()
    for _ in range(reps):
        for scripts in scripts_per_seed:
            run = system.start(engine=engine)
            engines = {p.name: p._interpreter for p in run.processes}
            for name, script in scripts.items():
                stepper = engines[name]
                try:
                    request = stepper.start()
                    if log_requests:
                        request_log.append((name, getattr(request, "op", "toss")))
                    for value in script:
                        request = stepper.resume(value)
                        if log_requests and request is not None:
                            request_log.append((name, getattr(request, "op", "toss")))
                except (RuntimeFault, DivergenceError):
                    pass
                choices += 1 + len(script)
        log_requests = False
    return time.perf_counter() - started, choices, request_log


def _engine_rows(make_system, scripts_per_seed, reps):
    rows = {}
    logs = {}
    for engine in ENGINES:
        system = make_system()
        system.compiled_program()
        _replay_scripts(system, engine, scripts_per_seed, 1)  # warmup
        elapsed, choices, log = _replay_scripts(
            system, engine, scripts_per_seed, reps
        )
        logs[engine] = log
        rows[engine] = {
            "engine": engine,
            "choices": choices,
            "wall_time_s": round(elapsed, 4),
            "us_per_choice": round(elapsed / choices * 1e6, 3),
            "choices_per_second": round(choices / elapsed),
        }
    # Both engines must produce the same request sequence for the same
    # recorded answers — engine-level observational parity.
    assert logs["walk"] == logs["compiled"], "request sequences diverged"
    speedup = rows["walk"]["us_per_choice"] / rows["compiled"]["us_per_choice"]
    rows["compiled"]["speedup_vs_walk"] = round(speedup, 2)
    return rows, speedup


def _engine_table(record_table, label, title, rows, speedup):
    lines = [
        title,
        "",
        f"  {'engine':<9} {'choices':>8} {'us/choice':>10} {'choices/s':>11}",
    ]
    for engine in ENGINES:
        row = rows[engine]
        lines.append(
            f"  {engine:<9} {row['choices']:>8} {row['us_per_choice']:>10.2f} "
            f"{row['choices_per_second']:>11,}"
        )
    lines.append(f"  engine-level speedup: {speedup:.2f}x")
    lines.append("wrote BENCH_compile.json")
    record_table(f"BENCH_compile_{label}", lines)


def test_bench_compile_engine_5ess(record_table):
    """Raw stepper throughput on recorded 5ESS schedules.

    The 5ESS workload is communication-dominated (~4 invisible nodes
    per visible operation), so the per-request floor bounds the gain;
    the compiled engine must still clear 2x.
    """
    make = lambda: _fiveess_system(calls_per_line=4)  # noqa: E731
    scripts = _record_scripts(make, seeds=range(8))
    rows, speedup = _engine_rows(make, scripts, reps=6)
    assert speedup >= 2.0, f"compiled engine only {speedup:.2f}x on 5ESS drive"
    merge_bench_json("compile", "5ess_engine", rows)
    _engine_table(
        record_table,
        "5ess_engine",
        "Engine-level drive: recorded random schedules, bounded 5ESS",
        rows,
        speedup,
    )


def test_bench_compile_kernel(record_table):
    """Raw stepper throughput on the computation-heavy kernel.

    Long invisible runs between sends: node dispatch and expression
    evaluation dominate, which is what compilation accelerates."""
    scripts = _record_scripts(_kernel_system, seeds=range(2), max_steps=200)
    rows, speedup = _engine_rows(_kernel_system, scripts, reps=4)
    assert speedup >= 3.0, f"compiled engine only {speedup:.2f}x on the kernel"
    merge_bench_json("compile", "kernel", rows)
    _engine_table(
        record_table,
        "kernel",
        "Engine-level drive: dispatch-heavy checksum kernel",
        rows,
        speedup,
    )
