"""CI throughput gate: fail on states/sec regressions vs a baseline.

Compares every row carrying a ``states_per_second`` field in the
current ``BENCH_*.json`` files against the same row (matched by file
and JSON path) in a baseline directory — normally the committed
versions stashed before re-running the benchmark slices::

    mkdir perf-baseline && cp BENCH_*.json perf-baseline/
    python -m pytest benchmarks ... -m slow -k "fig2 or fig3 or 5ess"
    python benchmarks/check_regression.py --baseline perf-baseline

Exits non-zero when any matched row's throughput drops by more than
``--tolerance`` (default 30%, generous enough that a loaded CI box does
not flake while a real hot-loop regression still trips it).  Rows that
exist on only one side are reported but never fail the gate — filtered
runs regenerate only their own slices.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from bench_lib import iter_rates


def compare(
    baseline_dir: pathlib.Path, current_dir: pathlib.Path, tolerance: float
) -> int:
    failures = 0
    compared = 0
    for base_file in sorted(baseline_dir.glob("BENCH_*.json")):
        current_file = current_dir / base_file.name
        if not current_file.exists():
            print(f"{base_file.name}: no current file, skipped")
            continue
        try:
            base = json.loads(base_file.read_text())
            current = json.loads(current_file.read_text())
        except ValueError as err:
            print(f"{base_file.name}: unreadable JSON ({err}), skipped")
            continue
        base_rates = dict(iter_rates(base))
        current_rates = dict(iter_rates(current))
        for path, old_rate in sorted(base_rates.items()):
            new_rate = current_rates.get(path)
            where = f"{base_file.name}:{'/'.join(path)}"
            if new_rate is None:
                print(f"  {where}: not re-measured, skipped")
                continue
            compared += 1
            delta = (new_rate - old_rate) / old_rate if old_rate else 0.0
            verdict = "ok"
            if old_rate and new_rate < old_rate * (1.0 - tolerance):
                verdict = "REGRESSION"
                failures += 1
            print(
                f"  {where}: {old_rate:,.0f} -> {new_rate:,.0f} states/s "
                f"({delta:+.1%}) {verdict}"
            )
    print(f"\ncompared {compared} rows, {failures} regression(s) beyond "
          f"{tolerance:.0%} tolerance")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        required=True,
        type=pathlib.Path,
        help="directory holding the baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[1],
        help="directory holding the freshly generated BENCH_*.json files "
        "(default: the repository root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum tolerated fractional throughput drop (default 0.30)",
    )
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"baseline directory {args.baseline} does not exist")
        return 2
    return compare(args.baseline, args.current, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
