"""Experiment ABL-POR — the VeriSoft substrate claim.

[God97], which this paper builds on, states that partial-order methods
are "the key to make this approach tractable".  This ablation measures
the explorer with and without persistent-set + sleep-set reduction on
three workloads: independent workers (best case), dining philosophers
(a deadlock must survive the reduction), and the call-processing core.
"""


from repro import SearchOptions, System, run_search
from repro.fiveess import build_app


def independent_workers(n_workers=4, items=3):
    source = """
    proc worker(ch, n) {
        var i = 0;
        while (i < n) { send(ch, i); i = i + 1; }
    }
    """
    system = System(source)
    for i in range(n_workers):
        ref = system.add_channel(f"c{i}", capacity=items)
        system.add_process(f"w{i}", "worker", [ref, items])
    return system


def philosophers(n=3):
    source = """
    proc philosopher(first, second) {
        sem_p(first);
        sem_p(second);
        send(out, 'eat');
        sem_v(second);
        sem_v(first);
    }
    """
    system = System(source)
    system.add_env_sink("out")
    forks = [system.add_semaphore(f"fork_{i}", 1) for i in range(n)]
    for i in range(n):
        system.add_process(f"phil_{i}", "philosopher", [forks[i], forks[(i + 1) % n]])
    return system


def fiveess_core():
    app = build_app(n_lines=2, calls_per_line=1)
    closed = app.close()
    return app.make_system(closed, with_mobility=False, with_maintenance=False)


def test_ablation_por(benchmark, record_table):
    workloads = [
        ("independent workers (4x3 sends)", independent_workers, 30, None),
        ("dining philosophers (n=3)", philosophers, 40, None),
        ("5ESS core call flow (2 lines)", fiveess_core, 45, 3000),
    ]
    lines = [
        "Ablation: persistent sets + sleep sets on vs off",
        f"{'workload':<34} {'mode':>7} {'paths':>8} {'transitions':>12} "
        f"{'deadlocks':>10} {'violations':>11}",
    ]
    for name, factory, depth, cap in workloads:
        results = {}
        for por in (False, True):
            report = run_search(
                factory(),
                SearchOptions(max_depth=depth, por=por, max_paths=cap, time_budget=60),
            )
            results[por] = report
            note = " (path budget hit)" if report.truncated else ""
            lines.append(
                f"{name:<34} {'POR' if por else 'full':>7} "
                f"{report.paths_explored:>8} {report.transitions_executed:>12} "
                f"{len(report.deadlocks):>10} {len(report.violations):>11}{note}"
            )
        # Reduction must not lose findings (same truncation budget aside).
        if not results[False].truncated and not results[True].truncated:
            assert bool(results[False].deadlocks) == bool(results[True].deadlocks)
            assert results[True].transitions_executed <= results[False].transitions_executed

    record_table("ABL-POR", lines)

    benchmark.pedantic(
        lambda: run_search(philosophers(), SearchOptions(max_depth=40, por=True)),
        rounds=3,
        iterations=1,
    )
