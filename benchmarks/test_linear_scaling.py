"""Experiment CLAIM-LIN — Section 4's complexity claim.

Paper claim (prose, no table): "The overall time complexity of the above
algorithm is essentially linear in the size of G_j and G~_j since the
transformation can be performed by a single traversal of both graphs."

Note the claim's input: the algorithm of Figure 1 *receives* the
control-flow graph ``G_j`` and the define-use graph ``G~_j`` (Step 1);
building ``G~_j`` (reaching definitions, may-alias) is standard prior
work and outside the claim.  We therefore time the two phases
separately:

* **construction** — alias + define-use graph building (reported, not
  asserted);
* **Figure-1 algorithm** — Steps 2–5 given the prebuilt graphs; per-unit
  cost (time / (|G_j| + |G~_j|)) must stay flat as programs grow.
"""

import time


from repro import close_program
from repro.cfg import build_cfgs
from repro.closing.analysis import _Fixpoint
from repro.closing.generators import generate_sized_program
from repro.closing.spec import ClosingSpec
from repro.closing.transform import transform_program
from repro.lang.parser import parse_program

SIZES = [100, 200, 400, 800, 1600, 3200]


def _measure(n_statements: int):
    source = generate_sized_program(n_statements, seed=7)
    cfgs = build_cfgs(parse_program(source))
    cfg_size = sum(cfg.node_count() + cfg.arc_count() for cfg in cfgs.values())

    started = time.perf_counter()
    fixpoint = _Fixpoint(cfgs, ClosingSpec())  # builds alias + define-use
    construction = time.perf_counter() - started
    defuse_size = sum(g.arc_count() for g in fixpoint._defuse.values())

    started = time.perf_counter()
    analysis = fixpoint.run()  # Steps 2-3 (+ interprocedural rounds)
    transform_program(analysis)  # Steps 4-5
    algorithm = time.perf_counter() - started
    return cfg_size, defuse_size, construction, algorithm


def test_linear_scaling(benchmark, record_table):
    rows = [_measure(size) for size in SIZES]

    benchmark(close_program, generate_sized_program(SIZES[-1], seed=7))

    lines = [
        "Section 4 claim: Figure-1 algorithm linear in |G_j| + |G~_j|",
        f"{'stmts':>6} {'|G|':>7} {'|G~|':>7} {'build ms':>9} "
        f"{'alg ms':>8} {'alg us/unit':>12}",
    ]
    per_unit = []
    for size, (cfg_size, defuse_size, construction, algorithm) in zip(SIZES, rows):
        units = cfg_size + defuse_size
        per_unit.append(algorithm / units * 1e6)
        lines.append(
            f"{size:>6} {cfg_size:>7} {defuse_size:>7} {construction * 1e3:>9.2f} "
            f"{algorithm * 1e3:>8.2f} {per_unit[-1]:>12.2f}"
        )

    ratio = per_unit[-1] / per_unit[1]
    lines.append(
        f"Figure-1 per-unit cost ratio (3200 vs 200 statements): {ratio:.2f}"
    )
    record_table("CLAIM-LIN", lines)
    # A 16x size growth must not change per-unit cost by more than noise;
    # a quadratic algorithm would show ~16x here.
    assert ratio < 4.0, f"Figure-1 algorithm not near-linear: ratio {ratio:.2f}"
