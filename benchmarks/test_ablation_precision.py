"""Experiment ABL-PRECISION — Section 5's precision discussion.

The paper names four sources of conservative approximation.  Three are
directly measurable on its own examples:

* **Dataflow composition** ("a=x+1; b=a-x will report incorrectly that b
  is dependent upon x"): count the spuriously eliminated statements.
* **Control vs data dependence** (the second Section 5 example): the
  analysis must *not* taint data that only control depends on the
  environment — zero spurious eliminations expected.
* **Temporal independence** (Figure 2): the closed p performs 10 tosses
  per run where one would do, so exhaustive exploration costs 2^10 paths
  instead of 2; hoisting the conditional out of the loop in the *source*
  removes the imprecision.  We measure both path counts.
"""


from repro import SearchOptions, System, close_program, run_search

COMPOSED = "proc p(x) { var a = x + 1; var b = a - x; var c = b; send(out, c); }"

CONTROL_ONLY = """
proc p(x) {
    var a = 0;
    var b;
    if (x > 0) { b = a - 1; } else { b = a + 1; }
    var c = b;
    send(out, c);
}
"""

FIG2 = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""

FIG2_HOISTED = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    if (y == 0) {
        while (cnt < 10) { send(out, 'even'); cnt = cnt + 1; }
    } else {
        while (cnt < 10) { send(out, 'odd'); cnt = cnt + 1; }
    }
}
"""


def paths_of(closed):
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", "p", [])
    return run_search(system, SearchOptions(max_depth=40, por=False)).paths_explored


def test_ablation_precision(benchmark, record_table):
    spec = {"p": ["x"]}

    composed = close_program(COMPOSED, env_params=spec)
    # b and c are semantically independent of x, but the monovariant
    # define-use closure eliminates both: 3 eliminated where the ideal
    # analysis would eliminate only `a = x + 1`.
    composed_eliminated = composed.proc_stats["p"].eliminated

    control = close_program(CONTROL_ONLY, env_params=spec)
    control_eliminated = control.proc_stats["p"].eliminated

    fig2 = close_program(FIG2, env_params=spec)
    hoisted = close_program(FIG2_HOISTED, env_params=spec)
    fig2_paths = paths_of(fig2)
    hoisted_paths = paths_of(hoisted)

    # The automated unswitching pass (repro.closing.hoist) achieves the
    # same fix without touching the source by hand.
    from repro.closing.hoist import unswitch_program
    from repro.lang.normalize import normalize_program
    from repro.lang.parser import parse_program

    auto_hoisted_prog, hoist_stats = unswitch_program(
        normalize_program(parse_program(FIG2))
    )
    auto_hoisted = close_program(auto_hoisted_prog, env_params=spec)
    auto_hoisted_paths = paths_of(auto_hoisted)

    assert composed_eliminated == 3  # a, b, c (2 spurious)
    assert control_eliminated == 1  # only the conditional itself
    assert fig2_paths == 1024
    assert hoisted_paths == 2
    assert auto_hoisted_paths == 2
    assert hoist_stats["p"].unswitched == 1

    record_table(
        "ABL-PRECISION",
        [
            "Section 5 precision ablation",
            "",
            "dataflow composition (a=x+1; b=a-x; c=b):",
            f"  eliminated statements : {composed_eliminated} "
            "(ideal 1; 2 spurious — Lemma 1 covers this)",
            "",
            "control-only dependence (if (x>0) b=a-1 else b=a+1):",
            f"  eliminated statements : {control_eliminated} "
            "(only the conditional; data untouched — matches the paper)",
            "",
            "temporal independence (Figure 2 vs hoisted sources):",
            f"  closed p          exhaustive paths : {fig2_paths} (10 tosses/run)",
            f"  hand-hoisted p    exhaustive paths : {hoisted_paths} (1 toss/run)",
            f"  auto-unswitched p exhaustive paths : {auto_hoisted_paths} "
            "(repro.closing.hoist)",
            "  'hoisting the conditional test y=0 outside the loop ... would",
            "   have eliminated this imprecision' — confirmed, and automated.",
        ],
    )

    benchmark.pedantic(lambda: paths_of(fig2), rounds=1, iterations=1)
