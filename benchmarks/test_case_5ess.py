"""Experiment CASE-5ESS — the Section 6 industrial case study.

The paper closed a large multi-process 5ESS wireless call-processing
application (manual stubs for a few controlled inputs + automatic
closing of the rest) and analyzed the result with VeriSoft; it reports
the experience qualitatively.  Our synthetic stand-in (see DESIGN.md)
preserves the structure; this harness reports the numbers the paper's
setup would produce:

* closing statistics for every process family (nodes eliminated, toss
  points, erased arguments) and total closing time;
* exploration statistics of the closed system;
* detection of the two seeded defects (lock-order deadlock in handover,
  billing invariant violated by concurrent calls) with the search effort
  needed to find each.
"""


from repro import SearchOptions, run_search
from repro.fiveess import build_app


def test_case_5ess(benchmark, record_table):
    app = build_app(n_lines=2, calls_per_line=1)
    closed = benchmark(app.close)

    lines = [
        "Section 6 case study: synthetic call-processing application",
        f"  subscriber lines: {app.n_lines}; open interface: 4 extern inputs; "
        "1 manual stub (digit collection)",
        "",
        f"{'procedure':<22} {'nodes':>11} {'toss':>5} {'erased args':>12} "
        f"{'removed params':>15}",
    ]
    for proc, stats in sorted(closed.proc_stats.items()):
        lines.append(
            f"{proc:<22} {stats.nodes_before:>4} -> {stats.nodes_after:>4} "
            f"{stats.toss_nodes:>5} {stats.erased_args:>12} "
            f"{', '.join(stats.removed_params) or '-':>15}"
        )
    lines.append(f"closing time: {closed.elapsed_seconds * 1e3:.2f} ms")

    # Defect hunt 1: the seeded lock-order deadlock (mobility slice).
    system = app.make_system(closed, with_maintenance=False)
    deadlock_report = run_search(
        system,
        SearchOptions(
            max_depth=40,
            por=True,
            max_paths=6000,
            stop_when=lambda r: any(
                app.classify_deadlock(d.blocked) == "seeded-lock-order"
                for d in r.deadlocks
            ),
        ),
    )
    seeded = [
        d
        for d in deadlock_report.deadlocks
        if app.classify_deadlock(d.blocked) == "seeded-lock-order"
    ]
    lines += [
        "",
        "defect 1: handover lock-order deadlock",
        f"  found: {bool(seeded)} after {deadlock_report.paths_explored} paths, "
        f"{deadlock_report.transitions_executed} transitions",
    ]
    assert seeded

    # Defect hunt 2: the billing invariant violation (core call flow).
    system = app.make_system(closed, with_mobility=False, with_maintenance=False)
    violation_report = run_search(
        system,
        SearchOptions(
            max_depth=60,
            por=True,
            max_paths=50_000,
            time_budget=90,
            stop_when=lambda r: bool(r.violations),
        ),
    )
    lines += [
        "defect 2: billing invariant violated by concurrent calls",
        f"  found: {bool(violation_report.violations)} after "
        f"{violation_report.paths_explored} paths, "
        f"{violation_report.transitions_executed} transitions",
    ]
    assert violation_report.violations

    # Defect hunt 3: the call-forwarding feature interaction (teardown
    # routed to the dialled line, not the forwarded-to line).
    system = app.make_system(
        closed, with_mobility=False, with_maintenance=False, with_forwarding=True
    )
    forwarding_report = run_search(
        system,
        SearchOptions(
            max_depth=70,
            por=True,
            max_paths=20_000,
            time_budget=90,
            stop_when=lambda r: any(
                app.classify_event(d) == "forwarding-teardown-leak"
                for d in r.deadlocks
            ),
        ),
    )
    leak_found = any(
        app.classify_event(d) == "forwarding-teardown-leak"
        for d in forwarding_report.deadlocks
    )
    lines += [
        "defect 3: call-forwarding feature interaction (teardown leak)",
        f"  found: {leak_found} after {forwarding_report.paths_explored} paths, "
        f"{forwarding_report.transitions_executed} transitions",
    ]
    assert leak_found

    # Coverage sweep of the full system within a fixed budget.
    system = app.make_system(closed)
    sweep = run_search(system, SearchOptions(max_depth=35, por=True, max_paths=2000))
    lines += [
        "",
        "bounded sweep of the full system (all 12 processes):",
        f"  {sweep.summary()}",
    ]

    # Scaling: larger configurations via random-walk testing (the state
    # space outgrows bounded-exhaustive search, as the paper's real
    # application did; walks still find the seeded deadlock).
    lines += ["", "scaling (400 random walks, depth 80, seed 11):"]
    lines.append(
        f"  {'lines':>5} {'processes':>10} {'closing ms':>11} "
        f"{'transitions':>12} {'lock-order deadlock found':>26}"
    )
    for n_lines in (2, 3, 4):
        big = build_app(n_lines=n_lines, calls_per_line=1)
        big_closed = big.close()
        big_system = big.make_system(big_closed, with_maintenance=False)
        walk_report = run_search(
            big_system,
            SearchOptions(strategy="random", walks=400, max_depth=80, seed=11),
        )
        found = any(
            big.classify_deadlock(d.blocked) == "seeded-lock-order"
            for d in walk_report.deadlocks
        )
        lines.append(
            f"  {n_lines:>5} {len(big_system.process_names):>10} "
            f"{big_closed.elapsed_seconds * 1e3:>11.2f} "
            f"{walk_report.transitions_executed:>12} {str(found):>26}"
        )
        assert found
    record_table("CASE-5ESS", lines)
