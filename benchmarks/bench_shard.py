"""Experiment BENCH-SHARD — static partitioning vs work stealing.

The static parallel scheduler cuts the choice tree at a fixed frontier
depth and assigns each prefix to a worker up front; a skewed tree —
one giant subtree among trivial siblings — leaves one worker holding
almost all the work while the rest idle.  The work-stealing scheduler
(:mod:`repro.service.scheduler`) hands out subtree *leases* and lets
idle workers steal unexplored siblings from the busy one, so skew is
dissolved at runtime instead of being baked in at partition time.

This experiment runs the identical bounded search three ways — the
sequential DFS baseline, ``--scheduler static`` and ``--scheduler
steal`` — over Figure 2, Figure 3 and a deliberately skewed toss tree,
and records wall time plus the lease/steal telemetry.

Asserted unconditionally (the schedulers must differ *only* in how
work is distributed):

* states / transitions / paths / toss points / violation groups all
  identical to sequential DFS for both schedulers;
* on the skewed tree, stealing actually happens (``steals > 0``) and
  the work is split across leases (``leases > jobs``).

Asserted only on hosts with >= 4 CPUs (the container CI box has one
core, where every scheduler time-slices): steal beats static on the
skewed workload by at least 20%.

Numbers land in the repo-root ``BENCH_shard.json`` (CI uploads the
``BENCH_*.json`` artifacts) with a copy under ``benchmarks/results/``.
Each parametrized case merges its rows into the JSON, so a filtered run
(``-k "fig2 or fig3"``) refreshes only its own entries.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import SearchOptions, System, run_search
from benchmarks.bench_lib import baseline_delta_lines, merge_bench_json
from tests.statespace.conftest import FIG2_SRC, FIG3_SRC, figure_system

pytestmark = pytest.mark.slow

JOBS = 4

PARITY_KEYS = ("states", "transitions", "paths", "toss_points", "violation_groups")

SKEWED_SRC = """
proc main() {
    var which;
    which = VS_toss(3);
    if (which == 0) {
        var i = 0;
        while (i < 8) {
            var t;
            t = VS_toss(1);
            i = i + 1;
        }
        send(out, i);
    } else {
        send(out, which);
    }
}
"""


def _skewed_system():
    """One subtree holds 2**8 paths, its three siblings one each — the
    static partition's worst case."""
    system = System(SKEWED_SRC)
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


CASES = {
    "fig2": (lambda: figure_system(FIG2_SRC, "p"), dict(max_depth=60)),
    "fig3": (lambda: figure_system(FIG3_SRC, "q"), dict(max_depth=60)),
    "skewed": (lambda: _skewed_system(), dict(max_depth=60)),
}


def _run_one(build, bounds, *, strategy, scheduler="static", jobs=0):
    system = build()
    options = SearchOptions(
        strategy=strategy, scheduler=scheduler, jobs=jobs, **bounds
    )
    started = time.perf_counter()
    report = run_search(system, options)
    elapsed = time.perf_counter() - started
    stats = report.stats
    return {
        "strategy": stats.strategy,
        "scheduler": scheduler if strategy == "parallel" else None,
        "jobs": stats.jobs,
        "states": stats.states_visited,
        "transitions": stats.transitions_executed,
        "toss_points": stats.toss_points,
        "paths": stats.paths_explored,
        "violation_groups": len(report.triage()),
        "leases": stats.leases,
        "steals": stats.steals,
        "leases_requeued": stats.leases_requeued,
        "wall_time_s": round(elapsed, 4),
        "states_per_second": round(stats.states_per_second),
    }


@pytest.mark.parametrize("label", list(CASES))
def test_bench_shard(label, record_table, baseline_results):
    build, bounds = CASES[label]
    rows = {
        "dfs": _run_one(build, bounds, strategy="dfs"),
        "static": _run_one(
            build, bounds, strategy="parallel", scheduler="static", jobs=JOBS
        ),
        "steal": _run_one(
            build, bounds, strategy="parallel", scheduler="steal", jobs=JOBS
        ),
    }

    # Identical search, different distribution cost — nothing else.
    for variant in ("static", "steal"):
        for key in PARITY_KEYS:
            assert rows[variant][key] == rows["dfs"][key], (
                f"{label}: {key} differs between {variant} and dfs: "
                f"{rows[variant][key]} vs {rows['dfs'][key]}"
            )

    if label == "skewed":
        assert rows["steal"]["steals"] > 0, "skewed tree must trigger steals"
        assert rows["steal"]["leases"] > JOBS, (
            "stealing must split the heavy subtree into more leases "
            "than there are workers"
        )
        ratio = rows["static"]["wall_time_s"] / max(
            rows["steal"]["wall_time_s"], 1e-9
        )
        rows["steal"]["speedup_vs_static"] = round(ratio, 2)
        if (os.cpu_count() or 1) >= 4:
            assert ratio >= 1.2, (
                f"skewed: steal was only {ratio:.2f}x static "
                "(expected >= 1.2x with >= 4 real cores)"
            )

    merge_bench_json("shard", label, rows)

    lines = [
        f"Schedulers on {label} (bounds {bounds}, jobs {JOBS})",
        "",
        f"  {'variant':<8} {'paths':>6} {'states':>7} {'leases':>7} "
        f"{'steals':>7} {'time':>9}",
    ]
    for variant, row in rows.items():
        lines.append(
            f"  {variant:<8} {row['paths']:>6} {row['states']:>7} "
            f"{row['leases']:>7} {row['steals']:>7} {row['wall_time_s']:>8.3f}s"
        )
    lines.extend(baseline_delta_lines(baseline_results.get("shard"), label, rows))
    record_table(f"bench_shard_{label}", lines)
