#!/usr/bin/env python3
"""Reproduce Figures 2 and 3 of the paper.

Prints the control-flow graphs of procedures p and q before and after
closing (with the marked nodes highlighted in the DOT export), then
verifies the two behavioural claims:

* Figure 2: the closed p is a *strict upper approximation* of p x Es;
* Figure 3: the closed q is *equivalent* to q x Es (optimal), and the
  two closed graphs are identical.

Run:  python examples/figures_2_and_3.py [--dot DIR]
"""

import argparse
import pathlib

from repro import System, close_program, collect_output_traces, to_dot
from repro.cfg import build_cfgs
from repro.closing import analyze_for_closing
from repro.lang.parser import parse_program

P_SRC = """
proc p(x) {
    var y = x % 2;
    var cnt = 0;
    while (cnt < 10) {
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        cnt = cnt + 1;
    }
}
"""

Q_SRC = """
proc q(x) {
    var cnt = 0;
    while (cnt < 10) {
        var y = x % 2;
        if (y == 0) { send(out, 'even'); } else { send(out, 'odd'); }
        x = x / 2;
        cnt = cnt + 1;
    }
}
"""


def show_graph(title, cfg, highlight=None):
    print(f"--- {title} ---")
    for node_id in sorted(cfg.nodes):
        node = cfg.nodes[node_id]
        mark = "*" if highlight and node_id in highlight else " "
        arcs = ", ".join(
            f"-[{arc.guard.describe()}]-> {arc.dst}" for arc in cfg.successors(node_id)
        )
        print(f"  {mark}{node_id:>3}: {node.describe():<28} {arcs}")
    print()


def open_behaviors(source, proc):
    traces = set()
    for value in range(1024):
        system = System(source)
        system.add_env_sink("out")
        system.add_process("P", proc, [value])
        traces |= collect_output_traces(system, "out", max_depth=40)
    return traces


def closed_behaviors(closed, proc):
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("P", proc, [])
    return collect_output_traces(system, "out", max_depth=40)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--dot", type=pathlib.Path, help="write DOT files here")
    args = parser.parse_args()

    for name, source in (("p", P_SRC), ("q", Q_SRC)):
        cfgs = build_cfgs(parse_program(source))
        analysis = analyze_for_closing(
            cfgs, __import__("repro").ClosingSpec.make(env_params={name: ["x"]})
        )
        closed = close_program(source, env_params={name: ["x"]})

        marked = analysis.procs[name].marked
        show_graph(f"G_{name} (original; * = marked by Step 3)", cfgs[name], marked)
        show_graph(f"G'_{name} (closed)", closed.cfgs[name])

        if args.dot:
            args.dot.mkdir(parents=True, exist_ok=True)
            (args.dot / f"{name}_before.dot").write_text(to_dot(cfgs[name], marked))
            (args.dot / f"{name}_after.dot").write_text(to_dot(closed.cfgs[name]))

    print("=== Behavioural claims ===")
    closed_p = close_program(P_SRC, env_params={"p": ["x"]})
    closed_q = close_program(Q_SRC, env_params={"q": ["x"]})

    p_open = open_behaviors(P_SRC, "p")
    p_closed = closed_behaviors(closed_p, "p")
    print(f"Figure 2: |p x Es| = {len(p_open)},  |p'| = {len(p_closed)}")
    print(f"          strict upper approximation: {p_open < p_closed}")

    q_open = open_behaviors(Q_SRC, "q")
    q_closed = closed_behaviors(closed_q, "q")
    print(f"Figure 3: |q x Es| = {len(q_open)},  |q'| = {len(q_closed)}")
    print(f"          optimal (sets equal): {q_open == q_closed}")
    print(f"Closed behaviours of p' and q' coincide: {p_closed == q_closed}")


if __name__ == "__main__":
    main()
