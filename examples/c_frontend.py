#!/usr/bin/env python3
"""Closing a real C program, like the paper's prototype tool.

The paper implemented its transformation "in a prototype tool for
automatically closing open programs written in the C programming
language."  This example feeds (preprocessed) C through the
pycparser-based front end, closes it, and explores the result.

Run:  python examples/c_frontend.py
"""

from repro import SearchOptions, System, close_program, run_search
from repro.lang.cfront import c_to_program
from repro.lang.pretty import pretty

C_SOURCE = """
int read_packet();
int link_status();

void router(int budget) {
    int forwarded = 0;
    int dropped = 0;
    int i;
    for (i = 0; i < budget; i++) {
        int pkt = read_packet();
        int up = link_status();
        if (up % 2 == 1) {
            if (pkt % 4 == 0) {
                send(egress, "control");
            } else {
                send(egress, "data");
            }
            forwarded++;
        } else {
            dropped++;
        }
    }
    VS_assert(forwarded + dropped == budget);
    send(egress, "stats");
}
"""


def main() -> None:
    print("=== 1. Translate C to RC ===")
    program = c_to_program(C_SOURCE)
    print(pretty(program))

    print("=== 2. Close (read_packet / link_status are the open interface) ===")
    closed = close_program(program)
    print(closed.summary())
    print()

    print("=== 3. Explore the closed router ===")
    system = System(closed.cfgs)
    system.add_env_sink("egress")
    system.add_process("router", "router", [3])
    report = run_search(system, SearchOptions(strategy="dfs", max_depth=40))
    print(report.summary())
    print()
    print(
        "The bookkeeping assertion (forwarded + dropped == budget) uses\n"
        "only system data, so the transformation preserved it — and it\n"
        "held on every path."
    )


if __name__ == "__main__":
    main()
