"""An open heartbeat monitor: a pinger probing the environment.

Each round the pinger asks the environment whether the probed service
answered (``env.probe()`` — the open interface) and reports ``"up"`` or
``"down"`` to the monitor, which tracks *consecutive* failures.  Run it
directly and the stub environment always answers up::

    python examples/py_pinger.py

Under ``repro search`` the closed program's environment chooses every
probe result, so it can fail all rounds in a row and break the
monitor's assertion that the service never looks dead::

    repro search examples/py_pinger.py         # exit code 3, seeded violation

Unlike py_worker_pool.py (tainted *data* flowing through the queue),
the queue here carries concrete atoms — only the pinger's *control* is
environment-chosen, exercising the other half of the closing analysis.
"""

from repro.pyruntime import Queue, env, join_all, log, spawn

ROUNDS = 3
reports = Queue(1)


def pinger(out, rounds):
    sent = 0
    while sent < rounds:
        status = env.probe()
        if status == 0:
            out.put("up")
        else:
            out.put("down")
        sent += 1


def monitor(inbox, rounds):
    streak = 0
    seen = 0
    while seen < rounds:
        report = inbox.get()
        if report == "down":
            streak += 1
        else:
            streak = 0
        seen += 1
        log(streak)
    # Seeded violation: the environment can fail every probe, so the
    # down-streak can cover all rounds.
    assert streak < ROUNDS


spawn(pinger, reports, ROUNDS)
spawn(monitor, reports, ROUNDS)

if __name__ == "__main__":
    join_all()
