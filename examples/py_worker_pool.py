"""An open worker pool: one producer feeding two workers over a queue.

The producer pulls jobs from the **environment** (``env.next_job()`` —
the open interface); the workers validate them and count rejects.  Run
it directly and the stub environment supplies well-formed jobs::

    python examples/py_worker_pool.py

Close and search it, and the most general environment is free to answer
``env.next_job()`` with anything — including a burst of malformed jobs
that drives a worker's reject counter past its assertion::

    repro close examples/py_worker_pool.py
    repro search examples/py_worker_pool.py    # exit code 3, seeded violation

The front end lifts this file as-is: the module prelude below (Queue /
spawn calls) *is* the system description — see docs/python_frontend.md.
"""

from repro.pyruntime import Queue, env, join_all, log, spawn

JOBS_PER_WORKER = 2
jobs = Queue(2)


def producer(out, total):
    sent = 0
    while sent < total:
        job = env.next_job()
        if job < 0:
            log("malformed")
        out.put(job)
        sent += 1


def worker(inbox, quota):
    done = 0
    rejected = 0
    while done < quota:
        job = inbox.get()
        if job < 0:
            rejected += 1
        done += 1
    # Seeded violation: the environment can make every job malformed,
    # so a worker can see its whole quota rejected.
    assert rejected < JOBS_PER_WORKER


spawn(producer, jobs, 2 * JOBS_PER_WORKER)
spawn(worker, jobs, JOBS_PER_WORKER)
spawn(worker, jobs, JOBS_PER_WORKER)

if __name__ == "__main__":
    join_all()
