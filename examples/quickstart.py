#!/usr/bin/env python3
"""Quickstart: close an open reactive program and explore it.

The program below is *open*: `poll_sensor` is implemented by the
environment (the rest of the plant), so the program cannot run by
itself.  `close_program` applies the paper's transformation — every
statement whose behaviour depends on sensor values is removed, and the
control-flow decisions they fed become bounded nondeterministic choices
(`VS_toss`).  The result is self-executable and can be explored
exhaustively with the VeriSoft-style explorer.

Run:  python examples/quickstart.py
"""

from repro import SearchOptions, System, close_program, run_search

OPEN_PROGRAM = """
extern proc poll_sensor();

proc controller(cycles) {
    var overheats = 0;
    var i = 0;
    while (i < cycles) {
        var reading;
        reading = poll_sensor();
        if (reading > 95) {
            send(actuator, 'cool');
            overheats = overheats + 1;
        } else {
            send(actuator, 'steady');
        }
        i = i + 1;
    }
    VS_assert(overheats <= cycles);
    send(actuator, 'done');
}
"""


def main() -> None:
    print("=== 1. Close the program with its most general environment ===")
    closed = close_program(OPEN_PROGRAM)
    print(closed.summary())
    print()
    print("Closed source (dispatch-loop export):")
    print(closed.to_source())

    print("=== 2. Build a runnable system ===")
    system = System(closed.cfgs)
    system.add_env_sink("actuator")
    system.add_process("ctl", "controller", [3])

    print("=== 3. Explore every behaviour ===")
    report = run_search(system, SearchOptions(strategy="dfs", max_depth=30))
    print(report.summary())
    print()
    print(
        "The environment can no longer feed the program values, yet every\n"
        "reactive behaviour it could have caused is still here: the\n"
        f"explorer covered {report.paths_explored} paths (= 2^3 sensor\n"
        "outcomes), and the preserved assertion held in all of them."
    )


if __name__ == "__main__":
    main()
