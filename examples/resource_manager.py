#!/usr/bin/env python3
"""The Section 7 discussion example: a resource-management system.

"Consider a resource-management system that receives (via its open
interface) 32-bit integers representing amounts of time requested from
the resource, but whose visible behavior only depends on which of a
small set of ranges each request falls into."

This example shows all three treatments of that system:

1. **naive closing** over a sampled finite domain — branching grows with
   the domain and still misses values outside the sample;
2. **automatic closing** (the paper's algorithm) — the interface is
   eliminated; every behaviour is covered with 3-way branching per
   request (the three ranges collapse into one toss... conservatively
   *per conditional*, i.e. 2x2 outcomes, of which one combination is
   infeasible — the upper approximation at work);
3. the **range-partitioned environment** sketched as future work in
   Section 7 — here written by hand as a manual stub, showing what the
   proposed static analysis would synthesize.

Run:  python examples/resource_manager.py
"""

from repro import System, close_naively, close_program, collect_output_traces

OPEN_SOURCE = """
extern proc next_request();

proc manager(n) {
    var i = 0;
    while (i < n) {
        var req;
        req = next_request();
        if (req < 10) {
            send(grants, 'immediate');
        } else {
            if (req < 1000) {
                send(grants, 'queued');
            } else {
                send(grants, 'rejected');
            }
        }
        i = i + 1;
    }
}
"""

# Section 7's idea, written as a manual stub: the input domain is
# partitioned into its three behaviourally-distinct ranges.
PARTITIONED_SOURCE = """
proc next_request_model() {
    var range;
    range = VS_toss(2);
    if (range == 0) { return 5; }
    if (range == 1) { return 500; }
    return 50000;
}

proc manager(n) {
    var i = 0;
    while (i < n) {
        var req;
        req = next_request_model();
        if (req < 10) {
            send(grants, 'immediate');
        } else {
            if (req < 1000) {
                send(grants, 'queued');
            } else {
                send(grants, 'rejected');
            }
        }
        i = i + 1;
    }
}
"""

REQUESTS = 2


def behaviors(cfgs):
    system = System(cfgs)
    system.add_env_sink("grants")
    system.add_process("mgr", "manager", [REQUESTS])
    return collect_output_traces(system, "grants", max_depth=30)


def main() -> None:
    print(f"Resource manager handling {REQUESTS} requests.\n")

    print("=== 1. Naive closing over sampled domains ===")
    for domain in ([0, 50], [0, 50, 5000], list(range(0, 4096, 64))):
        naive = close_naively(OPEN_SOURCE, {"next_request": domain})
        traces = behaviors(naive.cfgs)
        print(
            f"  |V| = {len(domain):>4}: {len(traces)} visible behaviours, "
            f"branching {naive.total_branching} per request sample"
        )
    print("  (small samples miss ranges entirely; big ones explode)")
    print()

    print("=== 2. Automatic closing (this paper) ===")
    closed = close_program(OPEN_SOURCE)
    auto_traces = behaviors(closed.cfgs)
    print(f"  behaviours: {len(auto_traces)}  — all of them, for free:")
    print(f"  {closed.summary()}")
    print()

    print("=== 3. Section 7's range-partitioned environment (manual) ===")
    partitioned_traces = behaviors(System(PARTITIONED_SOURCE).cfgs)
    print(f"  behaviours: {len(partitioned_traces)}")
    print()

    print("=== 4. The Section 7 analysis, automated ===")
    from repro.closing import close_with_partitioning

    auto_partitioned, report = close_with_partitioning(OPEN_SOURCE)
    site = report.sites[0]
    print(
        f"  partition found: {site.classes} classes, "
        f"representatives {site.representatives}"
    )
    auto_partitioned_traces = behaviors(auto_partitioned.cfgs)
    print(f"  behaviours: {len(auto_partitioned_traces)}")
    print()

    exact = partitioned_traces  # ground truth: 3 ranges per request
    print("=== Comparison ===")
    print(f"  ground truth (3 ranges ^ {REQUESTS} requests): {len(exact)}")
    print(f"  automatic closing covers ground truth: {exact <= auto_traces}")
    extra = auto_traces - exact
    print(
        f"  automatic closing adds {len(extra)} infeasible behaviours "
        "(the conservative upper approximation)"
    )
    print(
        "  close_with_partitioning is exact: "
        f"{auto_partitioned_traces == exact}"
    )


if __name__ == "__main__":
    main()
