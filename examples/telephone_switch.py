#!/usr/bin/env python3
"""The Section 6 case study: closing a telephone call-processing app.

Builds the synthetic 5ESS-style application (line handling, call
control, billing, mobility, maintenance — see repro.fiveess), closes it
automatically (with one manual stub for digit collection, following the
paper's methodology), and lets the VeriSoft-style explorer hunt the two
seeded concurrency defects.

Run:  python examples/telephone_switch.py
"""

from repro import SearchOptions, run_search
from repro.fiveess import build_app


def main() -> None:
    app = build_app(n_lines=2, calls_per_line=1)

    print("=== 1. The open application ===")
    print(f"RC source: {len(app.source.splitlines())} lines")
    print("Open interface (provided by the rest of the switch):")
    for name in (
        "next_subscriber_event",
        "answer_decision",
        "radio_measurement",
        "maintenance_code",
    ):
        print(f"  extern proc {name}()")
    print("Manual stub: collect_digits() — a bounded VS_toss over the dial plan")
    print()

    print("=== 2. Automatic closing ===")
    closed = app.close()
    print(closed.summary())
    print()

    print("=== 3. Hunting the seeded lock-order deadlock ===")
    system = app.make_system(closed, with_maintenance=False)
    report = run_search(
        system,
        SearchOptions(
            strategy="dfs",
            max_depth=40,
            por=True,
            max_paths=6000,
            stop_when=lambda r: any(
                app.classify_deadlock(d.blocked) == "seeded-lock-order"
                for d in r.deadlocks
            ),
        ),
    )
    for event in report.deadlocks:
        if app.classify_deadlock(event.blocked) == "seeded-lock-order":
            print(
                f"deadlock found after {report.paths_explored} paths; "
                f"blocked: {', '.join(event.blocked)}"
            )
            print("scenario (last steps):")
            for step in event.trace.steps[-8:]:
                print(f"  {step.describe()}")
            break
    print()

    print("=== 4. Hunting the billing-invariant violation ===")
    system = app.make_system(closed, with_mobility=False, with_maintenance=False)
    report = run_search(
        system,
        SearchOptions(
            strategy="dfs",
            max_depth=60,
            por=True,
            max_paths=50_000,
            time_budget=90,
            stop_when=lambda r: bool(r.violations),
        ),
    )
    if report.violations:
        violation = report.violations[0]
        print(
            f"assertion violated in process {violation.process!r} "
            f"after {report.paths_explored} paths"
        )
        print("scenario (two calls answered concurrently):")
        for step in violation.trace.steps:
            print(f"  {step.describe()}")
    print()
    print(
        "Closing the same application by hand would mean simulating the\n"
        "rest of the switch; the transformation did it automatically, and\n"
        "the explorer found both seeded defects."
    )


if __name__ == "__main__":
    main()
