#!/usr/bin/env python3
"""Closing a protocol implementation against an unreliable network.

A stop-and-wait (alternating-bit-style) sender/receiver pair runs over a
lossy link.  The *link* is the environment: whether each frame or
acknowledgement survives is decided by `link_quality()`, an extern call
into the open interface.  Manually modelling a faithful lossy network is
exactly the kind of environment-writing drudgery the paper automates —
after closing, every loss pattern is a sequence of `VS_toss` outcomes
and the explorer checks the protocol against all of them (up to the
retry bound).

The protocol carries a deliberate guarantee to check: with at most
`MAX_RETRIES` retransmissions per frame, either the payload sequence is
delivered intact and in order, or the sender reports failure — never a
duplicated or reordered delivery.

Run:  python examples/stop_and_wait.py
"""

from repro import SearchOptions, System, close_program, collect_output_traces, run_search

PROTOCOL = """
extern proc link_quality();

proc deliver_or_drop(ch, frame) {
    // The environment decides whether the link delivers this frame.
    var q;
    q = link_quality();
    if (q % 4 != 0) {
        send(ch, frame);
    } else {
        send(ch, 'lost');
    }
}

proc sender(n_frames, max_retries) {
    var down = channel('to_recv');
    var up = channel('to_send');
    var seq = 0;
    var frame = 0;
    while (frame < n_frames) {
        var tries = 0;
        var acked = 0;
        while (acked == 0) {
            if (tries > max_retries) {
                send(out, 'give-up');
                exit;
            }
            deliver_or_drop(down, frame * 2 + seq);
            var ack;
            ack = recv(up);
            if (ack != 'lost') {
                if (ack == seq) { acked = 1; }
            }
            tries = tries + 1;
        }
        seq = 1 - seq;
        frame = frame + 1;
    }
    send(out, 'sender-done');
}

proc receiver(n_frames) {
    var down = channel('to_recv');
    var up = channel('to_send');
    var expected = 0;
    var delivered = 0;
    while (true) {
        var m;
        m = recv(down);
        if (m != 'lost') {
            var seq = m % 2;
            var payload = m / 2;
            if (seq == expected) {
                send(out, payload);
                delivered = delivered + 1;
                VS_assert(payload == delivered - 1);  // in order, no dups
                expected = 1 - expected;
            }
            deliver_or_drop(up, seq);
        } else {
            skip;
        }
    }
}
"""


def build(n_frames=2, max_retries=2):
    closed = close_program(PROTOCOL)
    system = System(closed.cfgs)
    system.add_channel("to_recv", capacity=1)
    system.add_channel("to_send", capacity=1)
    system.add_env_sink("out")
    system.add_process("S", "sender", [n_frames, max_retries])
    system.add_process("R", "receiver", [n_frames])
    return closed, system


def main() -> None:
    closed, system = build()
    print("=== Closing the protocol against the most general link ===")
    print(closed.summary())
    print()

    print("=== Exhaustive check over all loss patterns ===")
    report = run_search(system, SearchOptions(strategy="dfs", max_depth=80, por=True))
    print(report.summary())
    assert not report.violations, "ordering/duplication property violated!"
    print(
        "ordering/no-duplication assertion held on every loss pattern\n"
        "(the reported deadlocks are quiescence: the receiver waiting for\n"
        "frames after the sender finished — expected for a reactive server)"
    )
    print()

    print("=== Observable outcomes ===")
    _, system = build()
    traces = collect_output_traces(system, "out", max_depth=80)
    outcomes = sorted(traces, key=lambda t: tuple(str(x) for x in t))
    for outcome in outcomes[:10]:
        print(f"  {outcome}")
    success = [t for t in traces if t and t[-1] == "sender-done"]
    failure = [t for t in traces if "give-up" in t]
    print(
        f"\n{len(traces)} distinct outcomes: {len(success)} full deliveries, "
        f"{len(failure)} honest give-ups under heavy loss — and no trace "
        "delivers out of order."
    )


if __name__ == "__main__":
    main()
